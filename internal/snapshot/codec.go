package snapshot

import (
	"encoding/binary"
	"hash/crc32"
	"io"
	"math"
)

// maxSectionBytes caps a single frame's declared payload length. It is
// a sanity bound on the length field, not an allocation bound — the
// decoder only ever allocates proportionally to bytes actually present.
const maxSectionBytes = 1 << 31

// Encode writes the snapshot in the versioned binary format. The output
// is deterministic: equal Snapshot values produce equal bytes.
func Encode(w io.Writer, s *Snapshot) error {
	var hdr [10]byte
	copy(hdr[:8], Magic)
	binary.LittleEndian.PutUint16(hdr[8:], Version)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	sections := []struct {
		id      Section
		payload []byte
	}{
		{SectionMeta, encodeMeta(&s.Meta)},
		{SectionPatterns, encodePatterns(s.Patterns)},
		{SectionWorkload, encodeWorkload(&s.Workload)},
		{SectionSpace, encodeSpace(&s.Space)},
		{SectionAtoms, encodeAtoms(s.Atoms)},
	}
	if s.Benefits != nil {
		sections = append(sections, struct {
			id      Section
			payload []byte
		}{SectionBenefits, encodeBenefits(s.Benefits)})
	}
	for _, sec := range sections {
		var fh [6]byte
		binary.LittleEndian.PutUint16(fh[0:], uint16(sec.id))
		binary.LittleEndian.PutUint32(fh[2:], uint32(len(sec.payload)))
		if _, err := w.Write(fh[:]); err != nil {
			return err
		}
		if _, err := w.Write(sec.payload); err != nil {
			return err
		}
		var crc [4]byte
		binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(sec.payload))
		if _, err := w.Write(crc[:]); err != nil {
			return err
		}
	}
	return nil
}

// Decode reads and validates a snapshot. It rejects non-snapshot input
// (ErrNotSnapshot), unknown versions (ErrUnsupportedVersion), and
// truncated, checksum-failing, misordered, or structurally inconsistent
// input (ErrCorrupt) — always via typed errors, never a panic, and
// never allocating more than a small multiple of the input size.
func Decode(r io.Reader) (*Snapshot, error) {
	s, _, err := decode(r)
	return s, err
}

// Inspect reads the snapshot and summarizes it (format version, frame
// sizes, element counts) without exposing the full state. It applies
// the same validation as Decode.
func Inspect(r io.Reader) (*Info, error) {
	s, info, err := decode(r)
	if err != nil {
		return nil, err
	}
	info.CreatedUnixMS = s.Meta.CreatedUnixMS
	info.WorkloadName = s.Meta.WorkloadName
	info.OptionsFP = s.Meta.OptionsFP
	info.Collections = s.Meta.Collections
	info.Queries = len(s.Workload.Queries)
	info.Updates = len(s.Workload.Updates)
	info.Patterns = len(s.Patterns)
	info.Candidates = len(s.Space.Candidates)
	info.Basics = len(s.Space.Basics)
	info.Atoms = len(s.Atoms)
	if s.Benefits != nil {
		info.BenefitRows = len(s.Benefits.Rows)
	}
	return info, nil
}

func decode(r io.Reader) (*Snapshot, *Info, error) {
	var hdr [10]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, nil, ErrNotSnapshot
	}
	if string(hdr[:8]) != Magic {
		return nil, nil, ErrNotSnapshot
	}
	if v := binary.LittleEndian.Uint16(hdr[8:]); v != Version {
		return nil, nil, &VersionError{Got: v}
	}
	info := &Info{Version: Version, TotalBytes: int64(len(hdr))}
	s := &Snapshot{}
	var last Section
	seen := map[Section]bool{}
	for {
		var fh [6]byte
		if _, err := io.ReadFull(r, fh[:]); err != nil {
			if err == io.EOF {
				break
			}
			return nil, nil, &CorruptError{Section: "header", Reason: "truncated frame header"}
		}
		id := Section(binary.LittleEndian.Uint16(fh[0:]))
		n := binary.LittleEndian.Uint32(fh[2:])
		if id < SectionMeta || id > SectionBenefits {
			return nil, nil, &CorruptError{Section: id.String(), Reason: "unknown section id"}
		}
		if id <= last {
			if seen[id] {
				return nil, nil, &CorruptError{Section: id.String(), Reason: "duplicate section"}
			}
			return nil, nil, &CorruptError{Section: id.String(), Reason: "sections out of order"}
		}
		if uint64(n) > maxSectionBytes {
			return nil, nil, &CorruptError{Section: id.String(), Reason: "section length out of range"}
		}
		payload, err := readPayload(r, int(n))
		if err != nil {
			return nil, nil, &CorruptError{Section: id.String(), Reason: "truncated payload"}
		}
		var crc [4]byte
		if _, err := io.ReadFull(r, crc[:]); err != nil {
			return nil, nil, &CorruptError{Section: id.String(), Reason: "truncated checksum"}
		}
		if binary.LittleEndian.Uint32(crc[:]) != crc32.ChecksumIEEE(payload) {
			return nil, nil, &CorruptError{Section: id.String(), Reason: "checksum mismatch"}
		}
		d := &dec{b: payload, sec: id}
		switch id {
		case SectionMeta:
			decodeMeta(d, &s.Meta)
		case SectionPatterns:
			s.Patterns = decodePatterns(d)
		case SectionWorkload:
			decodeWorkload(d, &s.Workload)
		case SectionSpace:
			decodeSpace(d, &s.Space, len(s.Patterns))
		case SectionAtoms:
			s.Atoms = decodeAtoms(d)
		case SectionBenefits:
			s.Benefits = decodeBenefits(d, len(s.Space.Candidates))
		}
		if err := d.finish(); err != nil {
			return nil, nil, err
		}
		last = id
		seen[id] = true
		info.Sections = append(info.Sections, SectionInfo{Section: id, Bytes: int64(n)})
		info.TotalBytes += int64(len(fh)) + int64(n) + int64(len(crc))
	}
	for _, req := range []Section{SectionMeta, SectionPatterns, SectionWorkload, SectionSpace, SectionAtoms} {
		if !seen[req] {
			return nil, nil, &CorruptError{Section: req.String(), Reason: "required section missing"}
		}
	}
	if err := crossValidate(s); err != nil {
		return nil, nil, err
	}
	return s, info, nil
}

// readPayload reads exactly n bytes, growing the buffer as data
// arrives so a lying length field on truncated input cannot force a
// large up-front allocation.
func readPayload(r io.Reader, n int) ([]byte, error) {
	const chunk = 1 << 16
	buf := make([]byte, 0, min(n, chunk))
	for len(buf) < n {
		next := min(n-len(buf), chunk)
		start := len(buf)
		buf = append(buf, make([]byte, next)...)
		if _, err := io.ReadFull(r, buf[start:]); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// crossValidate checks the constraints that span sections, so layers
// above can index freely into a decoded snapshot.
func crossValidate(s *Snapshot) error {
	if s.Space.NumQueries != len(s.Workload.Queries) {
		return &CorruptError{Section: SectionSpace.String(), Reason: "query count disagrees with workload section"}
	}
	if b := s.Benefits; b != nil {
		if b.NumQueries != s.Space.NumQueries {
			return &CorruptError{Section: SectionBenefits.String(), Reason: "query count disagrees with space section"}
		}
	}
	return nil
}

// --- section payloads ---

func encodeMeta(m *Meta) []byte {
	var e enc
	e.varint(m.CreatedUnixMS)
	e.str(m.WorkloadName)
	e.str(m.OptionsFP)
	e.uvarint(uint64(len(m.Collections)))
	for _, c := range m.Collections {
		e.str(c.Name)
		e.varint(c.Version)
	}
	return e.b
}

func decodeMeta(d *dec, m *Meta) {
	m.CreatedUnixMS = d.varint()
	m.WorkloadName = d.str()
	m.OptionsFP = d.str()
	n := d.count(2)
	for i := 0; i < n && d.err == nil; i++ {
		m.Collections = append(m.Collections, CollectionVersion{Name: d.str(), Version: d.varint()})
	}
}

func encodePatterns(pats []string) []byte {
	var e enc
	e.uvarint(uint64(len(pats)))
	for _, p := range pats {
		e.str(p)
	}
	return e.b
}

func decodePatterns(d *dec) []string {
	n := d.count(1)
	if n == 0 {
		return nil
	}
	out := make([]string, 0, n)
	for i := 0; i < n && d.err == nil; i++ {
		p := d.str()
		if p == "" {
			d.fail("empty pattern")
			break
		}
		out = append(out, p)
	}
	return out
}

func encodeWorkload(w *WorkloadData) []byte {
	var e enc
	e.uvarint(uint64(len(w.Queries)))
	for _, q := range w.Queries {
		e.str(q.ID)
		e.f64(q.Weight)
		e.str(q.Text)
	}
	e.uvarint(uint64(len(w.Updates)))
	for _, u := range w.Updates {
		e.u8(u.Kind)
		e.str(u.Collection)
		e.f64(u.Weight)
		e.str(u.DocXML)
		e.str(u.Path)
	}
	return e.b
}

func decodeWorkload(d *dec, w *WorkloadData) {
	nq := d.count(3)
	for i := 0; i < nq && d.err == nil; i++ {
		w.Queries = append(w.Queries, QueryData{ID: d.str(), Weight: d.f64(), Text: d.str()})
	}
	nu := d.count(4)
	for i := 0; i < nu && d.err == nil; i++ {
		u := UpdateData{Kind: d.u8(), Collection: d.str(), Weight: d.f64(), DocXML: d.str(), Path: d.str()}
		if u.Kind > 1 {
			d.fail("unknown update kind")
			break
		}
		w.Updates = append(w.Updates, u)
	}
}

func encodeSpace(sp *SpaceData) []byte {
	var e enc
	e.uvarint(uint64(sp.NumQueries))
	e.uvarint(uint64(len(sp.Candidates)))
	e.i32s(sp.Basics)
	for _, c := range sp.Candidates {
		e.str(c.Collection)
		e.uvarint(uint64(c.PatternID))
		e.str(c.Type)
		if c.Basic {
			e.u8(1)
		} else {
			e.u8(0)
		}
		e.str(c.Rule)
		e.str(c.DefName)
		e.varint(c.EstEntries)
		e.varint(c.EstPages)
		e.i32s(c.FromQueries)
		e.i32s(c.Children)
		e.i32s(c.Covers)
	}
	e.bytes(sp.StatsJSON)
	return e.b
}

func decodeSpace(d *dec, sp *SpaceData, numPatterns int) {
	sp.NumQueries = d.wide()
	nCand := d.count(8)
	sp.Basics = d.i32s(nCand, false)
	if nCand > 0 {
		sp.Candidates = make([]CandidateData, 0, nCand)
	}
	for i := 0; i < nCand && d.err == nil; i++ {
		c := CandidateData{Collection: d.str()}
		pid := d.uvarint()
		if pid >= uint64(numPatterns) {
			d.fail("candidate pattern id out of range")
			break
		}
		c.PatternID = uint32(pid)
		c.Type = d.str()
		c.Basic = d.u8() == 1
		c.Rule = d.str()
		c.DefName = d.str()
		c.EstEntries = d.varint()
		c.EstPages = d.varint()
		c.FromQueries = d.i32s(sp.NumQueries, false)
		c.Children = d.i32s(nCand, false)
		c.Covers = d.i32s(len(sp.Basics), true)
		for _, ch := range c.Children {
			if int(ch) == i {
				d.fail("candidate is its own DAG child")
			}
		}
		sp.Candidates = append(sp.Candidates, c)
	}
	sp.StatsJSON = d.bytes()
	if d.err == nil && len(sp.StatsJSON) == 0 {
		sp.StatsJSON = nil
	}
}

func encodeAtoms(atoms []Atom) []byte {
	var e enc
	e.uvarint(uint64(len(atoms)))
	for _, a := range atoms {
		e.str(a.Key)
		e.f64(a.CostNoIndexes)
		e.f64(a.Cost)
		e.uvarint(uint64(len(a.UsedIndexes)))
		for _, u := range a.UsedIndexes {
			e.str(u)
		}
		e.str(a.PlanDesc)
	}
	return e.b
}

func decodeAtoms(d *dec) []Atom {
	n := d.count(20)
	if n == 0 {
		return nil
	}
	out := make([]Atom, 0, n)
	for i := 0; i < n && d.err == nil; i++ {
		a := Atom{Key: d.str(), CostNoIndexes: d.f64(), Cost: d.f64()}
		if a.Key == "" {
			d.fail("empty atom key")
			break
		}
		nu := d.count(1)
		for j := 0; j < nu && d.err == nil; j++ {
			a.UsedIndexes = append(a.UsedIndexes, d.str())
		}
		a.PlanDesc = d.str()
		out = append(out, a)
	}
	return out
}

func encodeBenefits(b *BenefitsData) []byte {
	var e enc
	e.uvarint(uint64(b.NumQueries))
	e.uvarint(uint64(len(b.Rows)))
	for _, row := range b.Rows {
		e.uvarint(uint64(len(row)))
		for _, cell := range row {
			e.uvarint(uint64(cell.Query))
			e.f64(cell.Benefit)
		}
	}
	e.f64s(b.Private)
	e.f64s(b.Update)
	return e.b
}

func decodeBenefits(d *dec, nCand int) *BenefitsData {
	b := &BenefitsData{NumQueries: d.wide()}
	nRows := d.count(1)
	if d.err == nil && nRows != nCand {
		d.fail("row count disagrees with candidate count")
		return b
	}
	if nRows > 0 {
		b.Rows = make([][]BenefitCell, 0, nRows)
	}
	for i := 0; i < nRows && d.err == nil; i++ {
		nc := d.count(9)
		var row []BenefitCell
		prev := int64(-1)
		for j := 0; j < nc && d.err == nil; j++ {
			q := d.uvarint()
			if q >= uint64(b.NumQueries) {
				d.fail("benefit cell query out of range")
				break
			}
			if int64(q) <= prev {
				d.fail("benefit cells not strictly ascending")
				break
			}
			prev = int64(q)
			row = append(row, BenefitCell{Query: int32(q), Benefit: d.f64()})
		}
		b.Rows = append(b.Rows, row)
	}
	b.Private = d.f64sOpt(nCand)
	b.Update = d.f64sOpt(nCand)
	return b
}

// --- primitive encoding ---

type enc struct{ b []byte }

func (e *enc) u8(v uint8)       { e.b = append(e.b, v) }
func (e *enc) uvarint(v uint64) { e.b = binary.AppendUvarint(e.b, v) }
func (e *enc) varint(v int64)   { e.b = binary.AppendVarint(e.b, v) }
func (e *enc) f64(v float64) {
	e.b = binary.LittleEndian.AppendUint64(e.b, math.Float64bits(v))
}
func (e *enc) str(s string) {
	e.uvarint(uint64(len(s)))
	e.b = append(e.b, s...)
}
func (e *enc) bytes(b []byte) {
	e.uvarint(uint64(len(b)))
	e.b = append(e.b, b...)
}
func (e *enc) i32s(v []int32) {
	e.uvarint(uint64(len(v)))
	for _, x := range v {
		e.varint(int64(x))
	}
}

// f64s writes an optional full-length float slice: a presence byte,
// then the values (the consumer knows the length).
func (e *enc) f64s(v []float64) {
	if v == nil {
		e.u8(0)
		return
	}
	e.u8(1)
	for _, x := range v {
		e.f64(x)
	}
}

// --- primitive decoding (sticky-error) ---

type dec struct {
	b   []byte
	off int
	sec Section
	err error
}

func (d *dec) fail(reason string) {
	if d.err == nil {
		d.err = &CorruptError{Section: d.sec.String(), Reason: reason}
	}
}

func (d *dec) rem() int { return len(d.b) - d.off }

func (d *dec) finish() error {
	if d.err == nil && d.rem() != 0 {
		d.fail("trailing bytes in section")
	}
	return d.err
}

func (d *dec) u8() uint8 {
	if d.err != nil {
		return 0
	}
	if d.rem() < 1 {
		d.fail("truncated byte")
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *dec) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail("bad varint")
		return 0
	}
	d.off += n
	return v
}

func (d *dec) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.fail("bad varint")
		return 0
	}
	d.off += n
	return v
}

// count reads an element count and bounds it by the bytes remaining in
// the section (each element needs at least max(1, perElem) bytes), so a
// corrupt count can never drive an allocation past a small multiple of
// the input size.
func (d *dec) count(perElem int) int {
	v := d.uvarint()
	if d.err != nil {
		return 0
	}
	if perElem < 1 {
		perElem = 1
	}
	if v > uint64(d.rem()/perElem)+1 {
		d.fail("count exceeds section size")
		return 0
	}
	return int(v)
}

// wide reads a non-count integer (one not backed by per-element bytes
// in this section, e.g. a cross-section query count) with an absolute
// sanity bound instead of a remaining-bytes bound.
func (d *dec) wide() int {
	v := d.uvarint()
	if d.err != nil {
		return 0
	}
	if v > maxSectionBytes {
		d.fail("integer out of range")
		return 0
	}
	return int(v)
}

func (d *dec) f64() float64 {
	if d.err != nil {
		return 0
	}
	if d.rem() < 8 {
		d.fail("truncated float")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.b[d.off:]))
	d.off += 8
	return v
}

func (d *dec) str() string {
	if d.err != nil {
		return ""
	}
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(d.rem()) {
		d.fail("string length exceeds section size")
		return ""
	}
	v := string(d.b[d.off : d.off+int(n)])
	d.off += int(n)
	return v
}

func (d *dec) bytes() []byte {
	if s := d.str(); s != "" {
		return []byte(s)
	}
	return nil
}

// i32s reads an index list whose every element must lie in [0, limit);
// ascending additionally requires strictly ascending order.
func (d *dec) i32s(limit int, ascending bool) []int32 {
	n := d.count(1)
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]int32, 0, n)
	prev := int64(-1)
	for i := 0; i < n; i++ {
		v := d.varint()
		if d.err != nil {
			return nil
		}
		if v < 0 || v >= int64(limit) {
			d.fail("index out of range")
			return nil
		}
		if ascending && v <= prev {
			d.fail("indices not strictly ascending")
			return nil
		}
		prev = v
		out = append(out, int32(v))
	}
	return out
}

// f64sOpt reads an optional full-length float slice written by
// enc.f64s.
func (d *dec) f64sOpt(n int) []float64 {
	if d.u8() == 0 || d.err != nil {
		return nil
	}
	if uint64(n)*8 > uint64(d.rem()) {
		d.fail("float list exceeds section size")
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = d.f64()
	}
	return out
}
