package snapshot

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// golden is a frozen snapshot value committed alongside its encoded
// bytes in testdata/golden_v1.snap. Do not edit: the fixture pins the
// version-1 wire format, so any codec change that shifts the bytes (or
// stops reading old bytes) fails this test instead of silently
// orphaning snapshots on disk. A deliberate format change must bump
// Version and add a new fixture, keeping this one decodable.
func golden() *Snapshot {
	return &Snapshot{
		Meta: Meta{
			CreatedUnixMS: 1754000000000,
			WorkloadName:  "golden",
			OptionsFP:     "v1|golden-options",
			Collections:   []CollectionVersion{{Name: "coll", Version: 3}},
		},
		Patterns: []string{"/a/b", "//b/@id"},
		Workload: WorkloadData{
			Queries: []QueryData{
				{ID: "Q1", Weight: 1, Text: "//b"},
				{ID: "Q2", Weight: 0.5, Text: "/a/b[@id = \"7\"]"},
			},
			Updates: []UpdateData{
				{Kind: 0, Collection: "coll", Weight: 2, DocXML: "<a><b id=\"1\"/></a>"},
				{Kind: 1, Collection: "coll", Weight: 0.125, Path: "/a/b"},
			},
		},
		Space: SpaceData{
			NumQueries: 2,
			Candidates: []CandidateData{
				{Collection: "coll", PatternID: 0, Type: "VARCHAR", Basic: true,
					DefName: "XIA_B1", EstEntries: 10, EstPages: 2,
					FromQueries: []int32{0, 1}, Covers: []int32{0}},
				{Collection: "coll", PatternID: 1, Type: "DOUBLE", Rule: "leaf",
					DefName: "XIA_G1", EstEntries: 12, EstPages: 3,
					Children: []int32{0}, Covers: []int32{0}},
			},
			Basics:    []int32{0},
			StatsJSON: []byte(`{"source":"golden"}`),
		},
		Atoms: []Atom{
			{Key: "deadbeef\x1f", CostNoIndexes: 42, Cost: 42},
			{Key: "deadbeef\x1f6:XIA_B1|4:coll|/a/b|VARCHAR", CostNoIndexes: 42, Cost: 7,
				UsedIndexes: []string{"XIA_B1"}, PlanDesc: "IXSCAN"},
		},
		Benefits: &BenefitsData{
			NumQueries: 2,
			Rows:       [][]BenefitCell{{{Query: 1, Benefit: 17.5}}, nil},
			Update:     []float64{0.25, 0},
		},
	}
}

const goldenFile = "testdata/golden_v1.snap"

// TestGoldenFixture is the cross-version format smoke: the committed
// bytes must decode to the frozen value, and encoding the frozen value
// must reproduce the committed bytes exactly. Regenerate (after a
// deliberate, version-bumped format change only) with
// UPDATE_SNAPSHOT_GOLDEN=1 go test ./internal/snapshot.
func TestGoldenFixture(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, golden()); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if os.Getenv("UPDATE_SNAPSHOT_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(goldenFile), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenFile, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", goldenFile, buf.Len())
	}
	want, err := os.ReadFile(goldenFile)
	if err != nil {
		t.Fatalf("missing golden fixture (run with UPDATE_SNAPSHOT_GOLDEN=1 to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("encoded bytes drifted from committed fixture (%d vs %d bytes): the wire format changed — bump Version and add a new fixture instead", buf.Len(), len(want))
	}
	got, err := Decode(bytes.NewReader(want))
	if err != nil {
		t.Fatalf("Decode(committed fixture): %v", err)
	}
	if !reflect.DeepEqual(got, golden()) {
		t.Fatal("committed fixture no longer decodes to the frozen value")
	}
}
