package snapshot

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
)

// FuzzDecode pins the decoder's safety contract: arbitrary input —
// including mutations of valid snapshots, which the seed corpus stacks
// the deck with — must either decode cleanly or fail with one of the
// typed errors; it must never panic, and anything that decodes must
// re-encode/re-decode to the same value (so a decoded snapshot is
// always safely re-saveable). The seeds run under plain `go test`, so
// CI exercises the corpus on every build.
func FuzzDecode(f *testing.F) {
	full := sampleBytes(f)
	f.Add(full)
	f.Add([]byte{})
	f.Add([]byte(Magic))
	f.Add(full[:10])          // header only
	f.Add(full[:len(full)/2]) // mid-frame truncation

	// Version bump.
	bumped := append([]byte(nil), full...)
	binary.LittleEndian.PutUint16(bumped[8:], Version+7)
	f.Add(bumped)

	// Payload corruption (checksum must catch it).
	corrupt := append([]byte(nil), full...)
	corrupt[len(corrupt)/2] ^= 0x40
	f.Add(corrupt)

	// Section id corruption on the first frame (order violation /
	// unknown id territory).
	reid := append([]byte(nil), full...)
	reid[10] = 0x05
	f.Add(reid)

	// Length-field corruption.
	relen := append([]byte(nil), full...)
	binary.LittleEndian.PutUint32(relen[12:], 0xfffffff0)
	f.Add(relen)

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Decode(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrNotSnapshot) && !errors.Is(err, ErrUnsupportedVersion) && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		var buf bytes.Buffer
		if err := Encode(&buf, s); err != nil {
			t.Fatalf("re-encode of decoded snapshot failed: %v", err)
		}
		s2, err := Decode(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-decode of re-encoded snapshot failed: %v", err)
		}
		var buf2 bytes.Buffer
		if err := Encode(&buf2, s2); err != nil {
			t.Fatalf("second re-encode failed: %v", err)
		}
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Fatal("decode/encode did not reach a fixed point")
		}
		if _, err := Inspect(bytes.NewReader(data)); err != nil {
			t.Fatalf("Inspect rejected input Decode accepted: %v", err)
		}
	})
}

func sampleBytes(f *testing.F) []byte {
	var buf bytes.Buffer
	if err := Encode(&buf, sample()); err != nil {
		f.Fatalf("Encode: %v", err)
	}
	return buf.Bytes()
}
