// Package snapshot is the advisor's durable session state store: a
// versioned, checksummed, self-describing binary format for a prepared
// session's full state — the workload, the pattern table, the candidate
// space with its containment DAG and coverage sets, the what-if cache's
// memoized per-(query, projected sub-config) atoms, and the standalone
// benefit matrix — so a restarted process can warm-start a session
// instead of re-deriving everything from scratch.
//
// # Format
//
// A snapshot is a fixed header followed by section frames:
//
//	header:  magic "XIASNAPS" (8 bytes) | format version (uint16 LE)
//	frame:   section id (uint16 LE) | payload length (uint32 LE)
//	         | payload | CRC-32 (IEEE) of the payload (uint32 LE)
//
// Frames appear in strictly ascending section-id order, each section at
// most once; Meta, Patterns, Workload, Space, and Atoms are required,
// Benefits is optional. Within a payload, counts and lengths are
// unsigned varints, signed integers are zigzag varints, floats are
// their exact IEEE-754 bits (8 bytes LE), and strings are
// length-prefixed bytes.
//
// # Guarantees
//
// Decode is strict: inputs that are not snapshots, carry an unknown
// format version, are truncated, fail a checksum, violate frame order,
// or contain out-of-range cross-references are rejected with typed
// errors (ErrNotSnapshot, ErrUnsupportedVersion, ErrCorrupt) — never a
// panic. Every count is validated against the bytes actually present
// before allocation, so a corrupt length cannot make Decode allocate
// unboundedly. Encode is deterministic: the same Snapshot value always
// produces the same bytes, which is what lets a committed golden
// fixture pin the format against drift.
//
// The package is self-contained (standard library only) so every layer
// above — core, the advisor facade, the server, the CLIs — can depend
// on it without cycles.
package snapshot

import (
	"errors"
	"fmt"
)

// Magic is the 8-byte file signature every snapshot starts with.
const Magic = "XIASNAPS"

// Version is the current format version. Decode accepts exactly this
// version; any other fails with ErrUnsupportedVersion.
const Version uint16 = 1

// Section identifies one frame of the file.
type Section uint16

// Section ids, in their required file order.
const (
	SectionMeta     Section = 1
	SectionPatterns Section = 2
	SectionWorkload Section = 3
	SectionSpace    Section = 4
	SectionAtoms    Section = 5
	SectionBenefits Section = 6
)

// String names the section for error messages and Inspect output.
func (s Section) String() string {
	switch s {
	case SectionMeta:
		return "meta"
	case SectionPatterns:
		return "patterns"
	case SectionWorkload:
		return "workload"
	case SectionSpace:
		return "space"
	case SectionAtoms:
		return "atoms"
	case SectionBenefits:
		return "benefits"
	}
	return fmt.Sprintf("section-%d", uint16(s))
}

// ErrNotSnapshot reports input that does not start with the snapshot
// magic — not a snapshot file at all.
var ErrNotSnapshot = errors.New("snapshot: not a snapshot file (bad magic)")

// ErrUnsupportedVersion is the base error of every VersionError.
var ErrUnsupportedVersion = errors.New("snapshot: unsupported format version")

// VersionError reports a well-formed header carrying a format version
// this build does not understand. It unwraps to ErrUnsupportedVersion.
type VersionError struct {
	// Got is the version the file declared.
	Got uint16
}

func (e *VersionError) Error() string {
	return fmt.Sprintf("snapshot: unsupported format version %d (this build reads version %d)", e.Got, Version)
}

func (e *VersionError) Unwrap() error { return ErrUnsupportedVersion }

// ErrCorrupt is the base error of every CorruptError.
var ErrCorrupt = errors.New("snapshot: corrupt input")

// CorruptError reports structurally invalid input: truncation, checksum
// mismatch, frame-order violations, or out-of-range cross-references.
// It unwraps to ErrCorrupt.
type CorruptError struct {
	// Section names where decoding failed ("header" before any frame).
	Section string
	// Reason says what was wrong.
	Reason string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("snapshot: corrupt input: %s: %s", e.Section, e.Reason)
}

func (e *CorruptError) Unwrap() error { return ErrCorrupt }

// Snapshot is a prepared session's full durable state.
type Snapshot struct {
	Meta     Meta
	Patterns []string
	Workload WorkloadData
	Space    SpaceData
	Atoms    []Atom
	// Benefits is the standalone benefit matrix, present only when the
	// session had built it before saving.
	Benefits *BenefitsData
}

// Meta identifies what the snapshot was taken from and what it is
// compatible with.
type Meta struct {
	// CreatedUnixMS is the save time (Unix milliseconds).
	CreatedUnixMS int64
	// WorkloadName is the workload's display name.
	WorkloadName string
	// OptionsFP fingerprints the advisor options that shape prepared
	// state; restore refuses a snapshot taken under different options.
	OptionsFP string
	// Collections records the per-collection statistics versions the
	// cached costs were computed against; restore refuses a snapshot
	// whose collections have changed since.
	Collections []CollectionVersion
}

// CollectionVersion is one collection's statistics version at save time.
type CollectionVersion struct {
	Name    string
	Version int64
}

// WorkloadData is the serialized workload.
type WorkloadData struct {
	Queries []QueryData
	Updates []UpdateData
}

// QueryData is one weighted workload query.
type QueryData struct {
	ID     string
	Weight float64
	Text   string
}

// UpdateData is one weighted data-modification statement.
type UpdateData struct {
	// Kind is 0 for insert, 1 for delete (workload.UpdateKind values).
	Kind       uint8
	Collection string
	Weight     float64
	// DocXML is the representative inserted document (inserts).
	DocXML string
	// Path is the rendered selection path (deletes).
	Path string
}

// SpaceData is the serialized candidate space: every candidate with its
// containment-DAG children and coverage set, plus the pipeline stats
// that produced it.
type SpaceData struct {
	// NumQueries is the workload query count candidate FromQueries and
	// benefit columns index into; Decode checks it against the workload
	// section.
	NumQueries int
	// Candidates is the full space in dense-ID order (IDs are indices).
	Candidates []CandidateData
	// Basics lists the basic subset as indices into Candidates, in the
	// pipeline's Key order (the order coverage sets index).
	Basics []int32
	// StatsJSON is the pipeline's candidate.Stats as JSON, carried
	// opaquely so restored recommendations report the original pipeline
	// run byte-for-byte.
	StatsJSON []byte
}

// CandidateData is one candidate index of the space.
type CandidateData struct {
	Collection string
	// PatternID indexes the snapshot's pattern table.
	PatternID uint32
	// Type is the value type's short name ("VARCHAR", "DOUBLE", "DATE").
	Type string
	// Basic marks source-enumerated candidates; Rule names the
	// generalization rule otherwise.
	Basic bool
	Rule  string
	// DefName is the virtual index definition's name — part of every
	// cached what-if atom key, so it must survive verbatim.
	DefName string
	// EstEntries and EstPages are the definition's size estimates.
	EstEntries int64
	EstPages   int64
	// FromQueries lists originating workload query indices (basics).
	FromQueries []int32
	// Children lists direct DAG specializations as candidate indices.
	Children []int32
	// Covers lists covered basic candidates as ascending indices into
	// Basics.
	Covers []int32
}

// Atom is one memoized what-if cache entry: the engine's cache key for
// a (query, projected sub-config) pair and the evaluation it produced.
type Atom struct {
	Key           string
	CostNoIndexes float64
	Cost          float64
	UsedIndexes   []string
	PlanDesc      string
}

// BenefitsData is the serialized standalone benefit matrix, rows
// aligned with SpaceData.Candidates.
type BenefitsData struct {
	NumQueries int
	Rows       [][]BenefitCell
	// Private and Update are optional per-candidate modular terms (empty
	// or full-length).
	Private []float64
	Update  []float64
}

// BenefitCell is one sparse (query, benefit) cell of a matrix row.
type BenefitCell struct {
	Query   int32
	Benefit float64
}

// Info describes a snapshot without materializing it: Inspect's output
// and the `xdb snapshot inspect` view.
type Info struct {
	Version uint16
	// Sections lists the frames in file order with their payload sizes.
	Sections []SectionInfo
	// TotalBytes is the full file size (header + frames).
	TotalBytes int64

	CreatedUnixMS int64
	WorkloadName  string
	OptionsFP     string
	Collections   []CollectionVersion
	Queries       int
	Updates       int
	Patterns      int
	Candidates    int
	Basics        int
	Atoms         int
	// BenefitRows is the benefit-matrix row count, 0 when the section is
	// absent.
	BenefitRows int
}

// SectionInfo is one frame's identity and payload size.
type SectionInfo struct {
	Section Section
	Bytes   int64
}
