package snapshot

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"reflect"
	"strings"
	"testing"
)

// sample builds a small but fully populated snapshot exercising every
// section and every optional field.
func sample() *Snapshot {
	return &Snapshot{
		Meta: Meta{
			CreatedUnixMS: 1754400000123,
			WorkloadName:  "xmark-mini",
			OptionsFP:     "v1|src=optimizer|gen=true|rules=default",
			Collections: []CollectionVersion{
				{Name: "xmark", Version: 7},
				{Name: "tpox", Version: 0},
			},
		},
		Patterns: []string{"/site/regions//item", "//item/@id", "/site/people/person/name"},
		Workload: WorkloadData{
			Queries: []QueryData{
				{ID: "Q1", Weight: 1, Text: "for $i in //item return $i"},
				{ID: "Q2", Weight: 2.5, Text: "for $p in /site/people/person return $p/name"},
			},
			Updates: []UpdateData{
				{Kind: 0, Collection: "xmark", Weight: 0.5, DocXML: "<item id=\"1\"/>"},
				{Kind: 1, Collection: "xmark", Weight: 0.25, Path: "/site/regions"},
			},
		},
		Space: SpaceData{
			NumQueries: 2,
			Candidates: []CandidateData{
				{Collection: "xmark", PatternID: 1, Type: "VARCHAR", Basic: true,
					DefName: "XIA_B1", EstEntries: 1000, EstPages: 12,
					FromQueries: []int32{0}, Covers: []int32{0}},
				{Collection: "xmark", PatternID: 2, Type: "VARCHAR", Basic: true,
					DefName: "XIA_B2", EstEntries: 400, EstPages: 6,
					FromQueries: []int32{1}, Covers: []int32{1}},
				{Collection: "xmark", PatternID: 0, Type: "VARCHAR", Rule: "lub",
					DefName: "XIA_G1", EstEntries: 1500, EstPages: 20,
					Children: []int32{0}, Covers: []int32{0}},
			},
			Basics:    []int32{0, 1},
			StatsJSON: []byte(`{"source":"optimizer","basic":2}`),
		},
		Atoms: []Atom{
			{Key: "abc123\x1f", CostNoIndexes: 100, Cost: 100},
			{Key: "abc123\x1f5:XIA_B1|5:xmark|//item/@id|VARCHAR", CostNoIndexes: 100, Cost: 40,
				UsedIndexes: []string{"XIA_B1"}, PlanDesc: "IXSCAN(XIA_B1)"},
		},
		Benefits: &BenefitsData{
			NumQueries: 2,
			Rows: [][]BenefitCell{
				{{Query: 0, Benefit: 60}},
				{{Query: 0, Benefit: 10}, {Query: 1, Benefit: 5}},
				nil,
			},
			Update: []float64{0, 0.5, 1.25},
		},
	}
}

func encodeBytes(t *testing.T, s *Snapshot) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Encode(&buf, s); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	return buf.Bytes()
}

func TestRoundTrip(t *testing.T) {
	want := sample()
	data := encodeBytes(t, want)
	got, err := Decode(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
	// Determinism: encoding the decoded value reproduces the bytes.
	if again := encodeBytes(t, got); !bytes.Equal(again, data) {
		t.Fatal("Encode is not deterministic across a decode round trip")
	}
}

func TestRoundTripMinimal(t *testing.T) {
	want := &Snapshot{
		Meta:     Meta{WorkloadName: "empty"},
		Patterns: []string{"/a"},
		Workload: WorkloadData{Queries: []QueryData{{ID: "Q1", Weight: 1, Text: "//a"}}},
		Space:    SpaceData{NumQueries: 1},
	}
	got, err := Decode(bytes.NewReader(encodeBytes(t, want)))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestDecodeNotSnapshot(t *testing.T) {
	for _, in := range [][]byte{nil, []byte("x"), []byte("PNG\r\n\x1a\n__"), []byte("XIASNAPX\x01\x00")} {
		if _, err := Decode(bytes.NewReader(in)); !errors.Is(err, ErrNotSnapshot) {
			t.Errorf("Decode(%q) = %v, want ErrNotSnapshot", in, err)
		}
	}
}

func TestDecodeUnsupportedVersion(t *testing.T) {
	data := encodeBytes(t, sample())
	binary.LittleEndian.PutUint16(data[8:], Version+1)
	_, err := Decode(bytes.NewReader(data))
	if !errors.Is(err, ErrUnsupportedVersion) {
		t.Fatalf("Decode = %v, want ErrUnsupportedVersion", err)
	}
	var ve *VersionError
	if !errors.As(err, &ve) || ve.Got != Version+1 {
		t.Fatalf("Decode = %v, want *VersionError{Got: %d}", err, Version+1)
	}
}

func TestDecodeTruncated(t *testing.T) {
	data := encodeBytes(t, sample())
	// Every proper prefix must fail typed — never panic, never succeed —
	// except the one boundary that drops exactly the optional benefits
	// frame, which is a smaller valid snapshot.
	_, fr := frames(t, data)
	validCut := len(data) - len(fr[len(fr)-1])
	for n := 0; n < len(data); n++ {
		if n == validCut {
			continue
		}
		_, err := Decode(bytes.NewReader(data[:n]))
		if err == nil {
			t.Fatalf("Decode of %d/%d-byte prefix succeeded", n, len(data))
		}
		if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrNotSnapshot) {
			t.Fatalf("Decode of %d-byte prefix: %v, want typed corrupt error", n, err)
		}
	}
}

func TestDecodeCorruptPayload(t *testing.T) {
	data := encodeBytes(t, sample())
	// Flip one byte inside the first section's payload: CRC must catch it.
	data[10+6+2] ^= 0xff
	_, err := Decode(bytes.NewReader(data))
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Decode = %v, want ErrCorrupt", err)
	}
	var ce *CorruptError
	if !errors.As(err, &ce) || ce.Section != "meta" {
		t.Fatalf("Decode = %v, want meta-section CorruptError", err)
	}
	if !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("error %q does not mention the checksum", err)
	}
}

// frames splits an encoded snapshot into its header and raw frames so
// order/duplication attacks can be reassembled.
func frames(t *testing.T, data []byte) (hdr []byte, fr [][]byte) {
	t.Helper()
	hdr, rest := data[:10], data[10:]
	for len(rest) > 0 {
		n := binary.LittleEndian.Uint32(rest[2:])
		total := 6 + int(n) + 4
		fr = append(fr, rest[:total])
		rest = rest[total:]
	}
	return hdr, fr
}

func TestDecodeSectionSwapped(t *testing.T) {
	hdr, fr := frames(t, encodeBytes(t, sample()))
	swapped := append([]byte(nil), hdr...)
	swapped = append(swapped, fr[1]...)
	swapped = append(swapped, fr[0]...)
	for _, f := range fr[2:] {
		swapped = append(swapped, f...)
	}
	_, err := Decode(bytes.NewReader(swapped))
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Decode = %v, want ErrCorrupt", err)
	}
	if !strings.Contains(err.Error(), "out of order") {
		t.Fatalf("error %q does not mention section order", err)
	}
}

func TestDecodeDuplicateSection(t *testing.T) {
	hdr, fr := frames(t, encodeBytes(t, sample()))
	dup := append([]byte(nil), hdr...)
	for _, f := range fr {
		dup = append(dup, f...)
	}
	dup = append(dup, fr[len(fr)-1]...)
	if _, err := Decode(bytes.NewReader(dup)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Decode = %v, want ErrCorrupt", err)
	}
}

func TestDecodeMissingSection(t *testing.T) {
	hdr, fr := frames(t, encodeBytes(t, sample()))
	missing := append([]byte(nil), hdr...)
	for i, f := range fr {
		if i == 2 { // drop the workload section
			continue
		}
		missing = append(missing, f...)
	}
	_, err := Decode(bytes.NewReader(missing))
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Decode = %v, want ErrCorrupt", err)
	}
}

func TestDecodeBadCrossReference(t *testing.T) {
	s := sample()
	s.Space.Candidates[0].PatternID = 99 // no such pattern
	data := encodeBytes(t, s)
	if _, err := Decode(bytes.NewReader(data)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Decode = %v, want ErrCorrupt", err)
	}

	s = sample()
	s.Space.NumQueries = 3 // disagrees with the workload section
	data = encodeBytes(t, s)
	_, err := Decode(bytes.NewReader(data))
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Decode = %v, want ErrCorrupt", err)
	}
}

// TestDecodeLyingCount pins the bounded-allocation guarantee: a section
// declaring a huge element count over a tiny payload must fail on the
// count check, not attempt the allocation.
func TestDecodeLyingCount(t *testing.T) {
	var payload []byte
	payload = binary.AppendUvarint(payload, 1<<40) // patterns "count"
	var buf bytes.Buffer
	buf.WriteString(Magic)
	var v [2]byte
	binary.LittleEndian.PutUint16(v[:], Version)
	buf.Write(v[:])
	var fh [6]byte
	binary.LittleEndian.PutUint16(fh[0:], uint16(SectionPatterns))
	binary.LittleEndian.PutUint32(fh[2:], uint32(len(payload)))
	buf.Write(fh[:])
	buf.Write(payload)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload))
	buf.Write(crc[:])
	if _, err := Decode(&buf); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Decode = %v, want ErrCorrupt", err)
	}
}

func TestInspect(t *testing.T) {
	s := sample()
	data := encodeBytes(t, s)
	info, err := Inspect(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("Inspect: %v", err)
	}
	if info.Version != Version {
		t.Errorf("Version = %d, want %d", info.Version, Version)
	}
	if info.TotalBytes != int64(len(data)) {
		t.Errorf("TotalBytes = %d, want %d", info.TotalBytes, len(data))
	}
	if len(info.Sections) != 6 {
		t.Errorf("Sections = %d, want 6", len(info.Sections))
	}
	if info.Queries != 2 || info.Updates != 2 || info.Patterns != 3 ||
		info.Candidates != 3 || info.Basics != 2 || info.Atoms != 2 || info.BenefitRows != 3 {
		t.Errorf("counts wrong: %+v", info)
	}
	if info.WorkloadName != "xmark-mini" || info.OptionsFP == "" {
		t.Errorf("meta wrong: %+v", info)
	}
}
