// Package testleak is a tiny goroutine-leak check for tests: snapshot
// the interesting goroutines when the test starts, and fail at cleanup
// if new ones are still alive after a grace period. "Interesting" means
// goroutines running this module's code — runtime, net/http transport
// and testing-harness goroutines are ignored, so the check composes
// with httptest servers and parallel tests.
package testleak

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

// modulePrefix identifies this module's frames in goroutine stacks.
const modulePrefix = "repro/"

// interesting returns the stacks of goroutines currently executing
// module code, excluding test-runner goroutines (which execute the test
// function itself) and this package.
func interesting() []string {
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	for n == len(buf) {
		buf = make([]byte, 2*len(buf))
		n = runtime.Stack(buf, true)
	}
	var out []string
	for _, g := range strings.Split(string(buf[:n]), "\n\n") {
		if !strings.Contains(g, modulePrefix) {
			continue
		}
		if strings.Contains(g, "testing.tRunner") || strings.Contains(g, "testleak.") {
			continue
		}
		out = append(out, g)
	}
	return out
}

// Check arms the leak check for the test: it snapshots the interesting
// goroutine count now and registers a cleanup that fails the test if
// more are still running at the end. Shutdown is asynchronous almost
// everywhere (closed connections, cancelled contexts), so the cleanup
// retries for up to five seconds before calling a goroutine leaked.
// Call it first in the test so the cleanup runs after the test's own
// cleanups (server close, context cancel) have finished.
func Check(t testing.TB) {
	t.Helper()
	before := len(interesting())
	t.Cleanup(func() {
		deadline := time.Now().Add(5 * time.Second)
		var leaked []string
		for {
			leaked = interesting()
			if len(leaked) <= before {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Errorf("testleak: %d goroutine(s) leaked (started with %d):\n\n%s",
			len(leaked)-before, before, strings.Join(leaked, "\n\n"))
	})
}
