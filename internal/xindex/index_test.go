package xindex

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/pattern"
	"repro/internal/sqltype"
	"repro/internal/store"
)

func testCollection(t testing.TB, n int) *store.Collection {
	t.Helper()
	c := store.NewCollection("items")
	for i := 0; i < n; i++ {
		region := []string{"namerica", "africa"}[i%2]
		src := fmt.Sprintf(
			`<site><regions><%s><item id="i%d"><quantity>%d</quantity><name>thing %d</name></item></%s></regions></site>`,
			region, i, i%7, i, region)
		if _, err := c.InsertXML(src); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func TestBuildAndScan(t *testing.T) {
	c := testCollection(t, 40)
	ix := Build("IQ", pattern.MustParse("/site/regions/*/item/quantity"), sqltype.Double, c)
	if ix.Entries() != 40 {
		t.Fatalf("Entries = %d, want 40", ix.Entries())
	}
	if err := ix.Tree().Validate(); err != nil {
		t.Fatal(err)
	}
	v, _ := sqltype.Cast(sqltype.Double, "3")
	res, err := ix.Scan(sqltype.Eq, v)
	if err != nil {
		t.Fatal(err)
	}
	// quantities are i%7 for i in 0..39: value 3 at i=3,10,17,24,31,38.
	if len(res.Entries) != 6 {
		t.Errorf("Eq(3) = %d entries, want 6", len(res.Entries))
	}
	res, err = ix.Scan(sqltype.Lt, v)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range res.Entries {
		if e.Key.F >= 3 {
			t.Errorf("Lt(3) returned %v", e.Key)
		}
	}
	if res.LeavesRead < 1 || res.TreeTraveld < 1 {
		t.Error("scan accounting missing")
	}
}

func TestPartialIndexing(t *testing.T) {
	c := testCollection(t, 20)
	// Pattern restricted to namerica only: half the items.
	ix := Build("INA", pattern.MustParse("/site/regions/namerica/item/quantity"), sqltype.Double, c)
	if ix.Entries() != 10 {
		t.Errorf("partial index entries = %d, want 10", ix.Entries())
	}
}

func TestTypeRejectsInvalidValues(t *testing.T) {
	c := testCollection(t, 10)
	// Names are not numeric: a DOUBLE index on names is empty.
	ix := Build("IN", pattern.MustParse("//name"), sqltype.Double, c)
	if ix.Entries() != 0 {
		t.Errorf("DOUBLE index over names has %d entries, want 0", ix.Entries())
	}
	ixs := Build("INS", pattern.MustParse("//name"), sqltype.Varchar, c)
	if ixs.Entries() != 10 {
		t.Errorf("VARCHAR index over names has %d entries, want 10", ixs.Entries())
	}
}

func TestAttributeIndex(t *testing.T) {
	c := testCollection(t, 10)
	ix := Build("IA", pattern.MustParse("//item/@id"), sqltype.Varchar, c)
	if ix.Entries() != 10 {
		t.Fatalf("attr index entries = %d", ix.Entries())
	}
	v, _ := sqltype.Cast(sqltype.Varchar, "i3")
	res, err := ix.Scan(sqltype.Eq, v)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != 1 {
		t.Errorf("Eq(i3) = %d entries", len(res.Entries))
	}
}

func TestInsertDeleteDocMaintenance(t *testing.T) {
	c := testCollection(t, 10)
	ix := Build("IQ", pattern.MustParse("//quantity"), sqltype.Double, c)
	id, err := c.InsertXML(`<site><regions><europe><item id="x"><quantity>42</quantity></item></europe></regions></site>`)
	if err != nil {
		t.Fatal(err)
	}
	doc := c.Get(id)
	added := ix.InsertDoc(doc)
	if added != 1 {
		t.Errorf("InsertDoc added %d entries, want 1", added)
	}
	if ix.Entries() != 11 {
		t.Errorf("Entries = %d", ix.Entries())
	}
	v, _ := sqltype.Cast(sqltype.Double, "42")
	res, _ := ix.Scan(sqltype.Eq, v)
	if len(res.Entries) != 1 {
		t.Errorf("new doc not findable")
	}
	removed := ix.DeleteDoc(doc)
	if removed != 1 || ix.Entries() != 10 {
		t.Errorf("DeleteDoc removed %d, entries %d", removed, ix.Entries())
	}
	res, _ = ix.Scan(sqltype.Eq, v)
	if len(res.Entries) != 0 {
		t.Error("deleted doc still in index")
	}
}

func TestScanNeAndContains(t *testing.T) {
	c := testCollection(t, 14)
	ix := Build("IQ", pattern.MustParse("//quantity"), sqltype.Double, c)
	v, _ := sqltype.Cast(sqltype.Double, "0")
	res, err := ix.Scan(sqltype.Ne, v)
	if err != nil {
		t.Fatal(err)
	}
	// i%7 for i in 0..13: two zeros.
	if len(res.Entries) != 12 {
		t.Errorf("Ne(0) = %d, want 12", len(res.Entries))
	}
	ixs := Build("INM", pattern.MustParse("//name"), sqltype.Varchar, c)
	sv, _ := sqltype.Cast(sqltype.Varchar, "thing 1")
	res, err = ixs.Scan(sqltype.ContainsSubstr, sv)
	if err != nil {
		t.Fatal(err)
	}
	// "thing 1", "thing 10".."thing 13": 5 matches.
	if len(res.Entries) != 5 {
		t.Errorf("Contains(thing 1) = %d, want 5", len(res.Entries))
	}
}

func TestScanTypeMismatch(t *testing.T) {
	c := testCollection(t, 5)
	ix := Build("IQ", pattern.MustParse("//quantity"), sqltype.Double, c)
	sv, _ := sqltype.Cast(sqltype.Varchar, "3")
	if _, err := ix.Scan(sqltype.Eq, sv); err == nil {
		t.Error("type-mismatched scan should fail")
	}
}

func TestPagesGrowWithData(t *testing.T) {
	small := Build("S", pattern.MustParse("//quantity"), sqltype.Double, testCollection(t, 10))
	big := Build("B", pattern.MustParse("//quantity"), sqltype.Double, testCollection(t, 2000))
	if big.Pages() <= small.Pages() {
		t.Errorf("pages: big=%d small=%d", big.Pages(), small.Pages())
	}
	if big.Height() < small.Height() {
		t.Errorf("height: big=%d small=%d", big.Height(), small.Height())
	}
}

func TestDDL(t *testing.T) {
	got := DDL("IDX_Q", "items", pattern.MustParse("/site/regions/*/item/quantity"), sqltype.Double)
	want := "CREATE INDEX IDX_Q ON ITEMS(DOC) GENERATE KEY USING XMLPATTERN '/site/regions/*/item/quantity' AS SQL DOUBLE"
	if got != want {
		t.Errorf("DDL = %q", got)
	}
	if !strings.Contains(DDL("I", "c", pattern.MustParse("//a"), sqltype.Varchar), "VARCHAR(100)") {
		t.Error("varchar DDL missing type")
	}
}
