package xindex

import (
	"fmt"
	"strings"

	"repro/internal/pattern"
	"repro/internal/sqltype"
	"repro/internal/store"
	"repro/internal/xmldoc"
)

// Index is a physical XML value index over one collection: a B+ tree of
// (typed value, doc, node) entries for every node reachable by the index
// pattern whose value casts to the index type.
type Index struct {
	Name    string
	Pattern pattern.Pattern
	Type    sqltype.Type

	matcher *pattern.Matcher
	tree    *BTree
	order   int
}

// New creates an empty physical index.
func New(name string, p pattern.Pattern, t sqltype.Type) *Index {
	return &Index{
		Name:    name,
		Pattern: p,
		Type:    t,
		matcher: pattern.InternedMatcher(p),
		tree:    NewBTree(DefaultOrder),
		order:   DefaultOrder,
	}
}

// Build constructs the index over the whole collection with a bulk load,
// replacing any previous contents.
func Build(name string, p pattern.Pattern, t sqltype.Type, c *store.Collection) *Index {
	ix := New(name, p, t)
	var entries []Entry
	c.Each(func(d *xmldoc.Document) bool {
		entries = append(entries, ix.docEntries(d)...)
		return true
	})
	ix.tree = BulkLoad(ix.order, entries, 0.7)
	return ix
}

// docEntries extracts the index entries a document contributes.
func (ix *Index) docEntries(d *xmldoc.Document) []Entry {
	var out []Entry
	d.Walk(func(n *xmldoc.Node) bool {
		var raw string
		switch n.Kind {
		case xmldoc.KindElement:
			raw = n.Text()
		case xmldoc.KindAttribute, xmldoc.KindText:
			raw = n.Value
		}
		if ix.matcher.MatchPath(n.RootPath()) {
			if v, ok := sqltype.Cast(ix.Type, raw); ok {
				out = append(out, Entry{Key: v, Doc: d.ID, Node: n.ID})
			}
		}
		return true
	})
	return out
}

// InsertDoc adds a document's entries (index maintenance on insert). It
// returns the number of entries added — the work an update statement pays.
func (ix *Index) InsertDoc(d *xmldoc.Document) int {
	es := ix.docEntries(d)
	for _, e := range es {
		ix.tree.Insert(e)
	}
	return len(es)
}

// DeleteDoc removes a document's entries (index maintenance on delete).
func (ix *Index) DeleteDoc(d *xmldoc.Document) int {
	es := ix.docEntries(d)
	removed := 0
	for _, e := range es {
		if ix.tree.Delete(e) {
			removed++
		}
	}
	return removed
}

// Entries returns the number of entries in the index.
func (ix *Index) Entries() int { return ix.tree.Size() }

// Pages returns the index size in pages (one tree node per page, as the
// order is tuned to the page size).
func (ix *Index) Pages() int64 {
	leaves, inner := ix.tree.Nodes()
	return int64(leaves + inner)
}

// Height returns the B+ tree height.
func (ix *Index) Height() int { return ix.tree.Height() }

// Tree exposes the underlying B+ tree for validation in tests.
func (ix *Index) Tree() *BTree { return ix.tree }

// ScanResult is the outcome of an index scan.
type ScanResult struct {
	Entries     []Entry
	LeavesRead  int
	TreeTraveld int // root-to-leaf descent length
}

// Scan evaluates (op, value) against the index. Rangeable operators use a
// B+ tree descent plus a bounded leaf walk; Ne and ContainsSubstr fall
// back to a full leaf scan with residual filtering.
func (ix *Index) Scan(op sqltype.CmpOp, v sqltype.Value) (ScanResult, error) {
	if op != sqltype.Exists && op != sqltype.ContainsSubstr && v.Type != ix.Type {
		return ScanResult{}, fmt.Errorf("xindex: %s scan with %v constant on %v index", ix.Name, v.Type, ix.Type)
	}
	res := ScanResult{TreeTraveld: ix.tree.Height()}
	collect := func(e Entry) bool {
		res.Entries = append(res.Entries, e)
		return true
	}
	switch op {
	case sqltype.Exists:
		res.LeavesRead = ix.tree.All(collect)
	case sqltype.Eq:
		res.LeavesRead = ix.tree.Equal(v, collect)
	case sqltype.Lt:
		res.LeavesRead = ix.tree.Range(Unbounded(), Excl(v), collect)
	case sqltype.Le:
		res.LeavesRead = ix.tree.Range(Unbounded(), Incl(v), collect)
	case sqltype.Gt:
		res.LeavesRead = ix.tree.Range(Excl(v), Unbounded(), collect)
	case sqltype.Ge:
		res.LeavesRead = ix.tree.Range(Incl(v), Unbounded(), collect)
	case sqltype.Ne:
		res.LeavesRead = ix.tree.All(func(e Entry) bool {
			if sqltype.Compare(e.Key, v) != 0 {
				res.Entries = append(res.Entries, e)
			}
			return true
		})
	case sqltype.ContainsSubstr:
		res.LeavesRead = ix.tree.All(func(e Entry) bool {
			if ix.Type == sqltype.Varchar && strings.Contains(e.Key.S, v.S) {
				res.Entries = append(res.Entries, e)
			}
			return true
		})
	default:
		return ScanResult{}, fmt.Errorf("xindex: unsupported operator %v", op)
	}
	return res, nil
}

// DDL renders the DB2-style CREATE INDEX statement for this index over
// the named collection.
func DDL(name, collection string, p pattern.Pattern, t sqltype.Type) string {
	return fmt.Sprintf(
		"CREATE INDEX %s ON %s(DOC) GENERATE KEY USING XMLPATTERN '%s' AS SQL %s",
		name, strings.ToUpper(collection), p.String(), t.String())
}
