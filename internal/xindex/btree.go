// Package xindex implements XML value indexes: page-structured B+ trees
// keyed by typed node values, where each index is defined — as in DB2
// pureXML — by an XML pattern and a SQL type. Only nodes reachable by the
// pattern whose values cast to the type are indexed (partial indexing).
package xindex

import (
	"fmt"
	"sort"

	"repro/internal/sqltype"
	"repro/internal/xmldoc"
)

// Entry is one index entry: a typed key plus the (document, node) it came
// from — the XML analogue of a RID.
type Entry struct {
	Key  sqltype.Value
	Doc  xmldoc.DocID
	Node xmldoc.NodeID
}

// compareEntries orders entries by key, then doc, then node, making every
// entry unique in the tree.
func compareEntries(a, b Entry) int {
	if c := sqltype.Compare(a.Key, b.Key); c != 0 {
		return c
	}
	switch {
	case a.Doc < b.Doc:
		return -1
	case a.Doc > b.Doc:
		return 1
	}
	switch {
	case a.Node < b.Node:
		return -1
	case a.Node > b.Node:
		return 1
	}
	return 0
}

// DefaultOrder is the maximum number of entries per leaf (and children per
// internal node). With ~24-byte entries this keeps a node near a 4 KB
// page, so node count approximates page count.
const DefaultOrder = 128

type bnode struct {
	leaf     bool
	entries  []Entry  // leaf only
	keys     []Entry  // internal: separator = smallest entry of children[i+1]
	children []*bnode // internal only
	next     *bnode   // leaf chain
}

// BTree is a B+ tree over Entries. The zero value is not usable; call
// NewBTree.
type BTree struct {
	order  int
	root   *bnode
	height int
	size   int
	leaves int
	inner  int
}

// NewBTree returns an empty tree with the given order (maximum fanout);
// order < 4 is raised to 4.
func NewBTree(order int) *BTree {
	if order < 4 {
		order = 4
	}
	return &BTree{
		order:  order,
		root:   &bnode{leaf: true},
		height: 1,
		leaves: 1,
	}
}

// Size returns the number of entries.
func (t *BTree) Size() int { return t.size }

// Height returns the tree height (1 for a single leaf).
func (t *BTree) Height() int { return t.height }

// Nodes returns (leafCount, innerCount). With order tuned to the page
// size, each node is one page.
func (t *BTree) Nodes() (leaves, inner int) { return t.leaves, t.inner }

// Insert adds an entry. Duplicate (key, doc, node) triples are ignored.
func (t *BTree) Insert(e Entry) {
	sep, right := t.insert(t.root, e)
	if right != nil {
		newRoot := &bnode{
			keys:     []Entry{sep},
			children: []*bnode{t.root, right},
		}
		t.root = newRoot
		t.inner++
		t.height++
	}
}

// insert descends to the correct leaf. On split it returns the separator
// entry and new right sibling; otherwise (Entry{}, nil).
func (t *BTree) insert(n *bnode, e Entry) (Entry, *bnode) {
	if n.leaf {
		i := sort.Search(len(n.entries), func(i int) bool {
			return compareEntries(n.entries[i], e) >= 0
		})
		if i < len(n.entries) && compareEntries(n.entries[i], e) == 0 {
			return Entry{}, nil // duplicate
		}
		n.entries = append(n.entries, Entry{})
		copy(n.entries[i+1:], n.entries[i:])
		n.entries[i] = e
		t.size++
		if len(n.entries) <= t.order {
			return Entry{}, nil
		}
		// Split leaf.
		mid := len(n.entries) / 2
		right := &bnode{leaf: true, entries: append([]Entry(nil), n.entries[mid:]...)}
		n.entries = n.entries[:mid]
		right.next = n.next
		n.next = right
		t.leaves++
		return right.entries[0], right
	}
	ci := sort.Search(len(n.keys), func(i int) bool {
		return compareEntries(e, n.keys[i]) < 0
	})
	sep, right := t.insert(n.children[ci], e)
	if right == nil {
		return Entry{}, nil
	}
	n.keys = append(n.keys, Entry{})
	copy(n.keys[ci+1:], n.keys[ci:])
	n.keys[ci] = sep
	n.children = append(n.children, nil)
	copy(n.children[ci+2:], n.children[ci+1:])
	n.children[ci+1] = right
	if len(n.children) <= t.order {
		return Entry{}, nil
	}
	// Split internal node.
	midKey := len(n.keys) / 2
	up := n.keys[midKey]
	rightNode := &bnode{
		keys:     append([]Entry(nil), n.keys[midKey+1:]...),
		children: append([]*bnode(nil), n.children[midKey+1:]...),
	}
	n.keys = n.keys[:midKey]
	n.children = n.children[:midKey+1]
	t.inner++
	return up, rightNode
}

// Delete removes the exact entry, reporting whether it was present.
// Leaves are allowed to underfill (lazy deletion); pages are reclaimed on
// Rebuild, which is how bulk maintenance is modeled.
func (t *BTree) Delete(e Entry) bool {
	n := t.root
	for !n.leaf {
		ci := sort.Search(len(n.keys), func(i int) bool {
			return compareEntries(e, n.keys[i]) < 0
		})
		n = n.children[ci]
	}
	i := sort.Search(len(n.entries), func(i int) bool {
		return compareEntries(n.entries[i], e) >= 0
	})
	if i >= len(n.entries) || compareEntries(n.entries[i], e) != 0 {
		return false
	}
	copy(n.entries[i:], n.entries[i+1:])
	n.entries = n.entries[:len(n.entries)-1]
	t.size--
	return true
}

// firstLeafFor positions at the first leaf that can contain key boundaries
// >= e.
func (t *BTree) leafFor(e Entry) *bnode {
	n := t.root
	for !n.leaf {
		ci := sort.Search(len(n.keys), func(i int) bool {
			return compareEntries(e, n.keys[i]) < 0
		})
		n = n.children[ci]
	}
	return n
}

// Bound is one end of a range scan.
type Bound struct {
	Value     sqltype.Value
	Inclusive bool
	Unbounded bool
}

// Unbounded returns a bound that does not constrain the scan.
func Unbounded() Bound { return Bound{Unbounded: true} }

// Incl returns an inclusive bound at v.
func Incl(v sqltype.Value) Bound { return Bound{Value: v, Inclusive: true} }

// Excl returns an exclusive bound at v.
func Excl(v sqltype.Value) Bound { return Bound{Value: v} }

// Range streams entries with lo <= key <= hi (subject to inclusivity) in
// key order to fn; fn returning false stops the scan. It returns the
// number of leaf nodes touched, which the executor uses to account I/O.
func (t *BTree) Range(lo, hi Bound, fn func(Entry) bool) int {
	var n *bnode
	if lo.Unbounded {
		n = t.root
		for !n.leaf {
			n = n.children[0]
		}
	} else {
		n = t.leafFor(Entry{Key: lo.Value, Doc: -1 << 62, Node: -1 << 30})
	}
	touched := 0
	for ; n != nil; n = n.next {
		touched++
		for _, e := range n.entries {
			if !lo.Unbounded {
				c := sqltype.Compare(e.Key, lo.Value)
				if c < 0 || (c == 0 && !lo.Inclusive) {
					continue
				}
			}
			if !hi.Unbounded {
				c := sqltype.Compare(e.Key, hi.Value)
				if c > 0 || (c == 0 && !hi.Inclusive) {
					return touched
				}
			}
			if !fn(e) {
				return touched
			}
		}
	}
	return touched
}

// Equal streams all entries with the given key.
func (t *BTree) Equal(v sqltype.Value, fn func(Entry) bool) int {
	return t.Range(Incl(v), Incl(v), fn)
}

// All streams every entry in key order.
func (t *BTree) All(fn func(Entry) bool) int {
	return t.Range(Unbounded(), Unbounded(), fn)
}

// BulkLoad builds a tree from entries (sorted internally) with leaves
// filled to the given factor (0 < fill <= 1), the standard bottom-up B+
// tree build.
func BulkLoad(order int, entries []Entry, fill float64) *BTree {
	if order < 4 {
		order = 4
	}
	if fill <= 0 || fill > 1 {
		fill = 0.7
	}
	es := append([]Entry(nil), entries...)
	sort.Slice(es, func(i, j int) bool { return compareEntries(es[i], es[j]) < 0 })
	// Drop duplicates.
	dedup := es[:0]
	for i, e := range es {
		if i == 0 || compareEntries(e, es[i-1]) != 0 {
			dedup = append(dedup, e)
		}
	}
	es = dedup

	t := NewBTree(order)
	if len(es) == 0 {
		return t
	}
	perLeaf := int(float64(order) * fill)
	if perLeaf < 1 {
		perLeaf = 1
	}
	// Build leaf level.
	var leaves []*bnode
	for i := 0; i < len(es); i += perLeaf {
		j := i + perLeaf
		if j > len(es) {
			j = len(es)
		}
		leaves = append(leaves, &bnode{leaf: true, entries: append([]Entry(nil), es[i:j]...)})
	}
	for i := 0; i+1 < len(leaves); i++ {
		leaves[i].next = leaves[i+1]
	}
	t.leaves = len(leaves)
	t.size = len(es)
	// Build internal levels.
	level := leaves
	height := 1
	for len(level) > 1 {
		var parents []*bnode
		perNode := int(float64(order) * fill)
		if perNode < 2 {
			perNode = 2
		}
		for i := 0; i < len(level); i += perNode {
			j := i + perNode
			if j > len(level) {
				j = len(level)
			}
			p := &bnode{children: append([]*bnode(nil), level[i:j]...)}
			for k := i + 1; k < j; k++ {
				p.keys = append(p.keys, smallestEntry(level[k]))
			}
			parents = append(parents, p)
			t.inner++
		}
		// A trailing parent with a single child is legal here; it only
		// wastes one page.
		level = parents
		height++
	}
	t.root = level[0]
	t.height = height
	return t
}

func smallestEntry(n *bnode) Entry {
	for !n.leaf {
		n = n.children[0]
	}
	return n.entries[0]
}

// Validate checks tree invariants: sorted leaves, correct leaf chaining,
// separator consistency, and size agreement. It returns an error
// describing the first violation, for tests and failure injection.
func (t *BTree) Validate() error {
	count := 0
	var prev *Entry
	var leafWalk func(n *bnode) error
	leafWalk = func(n *bnode) error {
		if n.leaf {
			for i := range n.entries {
				e := n.entries[i]
				if prev != nil && compareEntries(*prev, e) >= 0 {
					return fmt.Errorf("xindex: entries out of order: %v then %v", prev.Key, e.Key)
				}
				prev = &n.entries[i]
				count++
			}
			return nil
		}
		if len(n.children) != len(n.keys)+1 {
			return fmt.Errorf("xindex: internal node with %d children, %d keys", len(n.children), len(n.keys))
		}
		for _, c := range n.children {
			if err := leafWalk(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := leafWalk(t.root); err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("xindex: size mismatch: counted %d, recorded %d", count, t.size)
	}
	// Leaf chain must visit the same number of entries.
	n := t.root
	for !n.leaf {
		n = n.children[0]
	}
	chain := 0
	for ; n != nil; n = n.next {
		chain += len(n.entries)
	}
	if chain != t.size {
		return fmt.Errorf("xindex: leaf chain has %d entries, size %d", chain, t.size)
	}
	return nil
}
