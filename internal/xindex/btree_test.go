package xindex

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sqltype"
	"repro/internal/xmldoc"
)

func dblEntry(f float64, doc int64, node int32) Entry {
	return Entry{
		Key:  sqltype.Value{Type: sqltype.Double, F: f},
		Doc:  xmldoc.DocID(doc),
		Node: xmldoc.NodeID(node),
	}
}

func TestInsertAndRange(t *testing.T) {
	tr := NewBTree(4) // tiny order to force splits
	for i := 0; i < 100; i++ {
		tr.Insert(dblEntry(float64(i%10), int64(i), 0))
	}
	if tr.Size() != 100 {
		t.Fatalf("Size = %d", tr.Size())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	var got []Entry
	v := sqltype.Value{Type: sqltype.Double, F: 3}
	tr.Equal(v, func(e Entry) bool { got = append(got, e); return true })
	if len(got) != 10 {
		t.Errorf("Equal(3) returned %d entries, want 10", len(got))
	}
	for _, e := range got {
		if e.Key.F != 3 {
			t.Errorf("Equal returned key %v", e.Key)
		}
	}
}

func TestDuplicateInsertIgnored(t *testing.T) {
	tr := NewBTree(4)
	e := dblEntry(1, 1, 1)
	tr.Insert(e)
	tr.Insert(e)
	if tr.Size() != 1 {
		t.Errorf("Size after duplicate insert = %d, want 1", tr.Size())
	}
}

func TestRangeBounds(t *testing.T) {
	tr := NewBTree(4)
	for i := 0; i < 20; i++ {
		tr.Insert(dblEntry(float64(i), int64(i), 0))
	}
	count := func(lo, hi Bound) int {
		n := 0
		tr.Range(lo, hi, func(Entry) bool { n++; return true })
		return n
	}
	v := func(f float64) sqltype.Value { return sqltype.Value{Type: sqltype.Double, F: f} }
	if got := count(Incl(v(5)), Incl(v(10))); got != 6 {
		t.Errorf("[5,10] = %d, want 6", got)
	}
	if got := count(Excl(v(5)), Excl(v(10))); got != 4 {
		t.Errorf("(5,10) = %d, want 4", got)
	}
	if got := count(Unbounded(), Excl(v(3))); got != 3 {
		t.Errorf("(-inf,3) = %d, want 3", got)
	}
	if got := count(Incl(v(17)), Unbounded()); got != 3 {
		t.Errorf("[17,inf) = %d, want 3", got)
	}
	if got := count(Unbounded(), Unbounded()); got != 20 {
		t.Errorf("full = %d, want 20", got)
	}
	if got := count(Incl(v(100)), Unbounded()); got != 0 {
		t.Errorf("beyond max = %d, want 0", got)
	}
}

func TestRangeEarlyStop(t *testing.T) {
	tr := NewBTree(4)
	for i := 0; i < 50; i++ {
		tr.Insert(dblEntry(float64(i), int64(i), 0))
	}
	n := 0
	tr.All(func(Entry) bool { n++; return n < 7 })
	if n != 7 {
		t.Errorf("early stop visited %d", n)
	}
}

func TestDelete(t *testing.T) {
	tr := NewBTree(4)
	for i := 0; i < 30; i++ {
		tr.Insert(dblEntry(float64(i), int64(i), 0))
	}
	if !tr.Delete(dblEntry(7, 7, 0)) {
		t.Fatal("Delete(7) = false")
	}
	if tr.Delete(dblEntry(7, 7, 0)) {
		t.Fatal("double delete succeeded")
	}
	if tr.Size() != 29 {
		t.Errorf("Size = %d", tr.Size())
	}
	found := false
	tr.All(func(e Entry) bool {
		if e.Key.F == 7 {
			found = true
		}
		return true
	})
	if found {
		t.Error("deleted entry still visible")
	}
	if err := tr.Validate(); err != nil {
		t.Error(err)
	}
}

func TestVarcharOrdering(t *testing.T) {
	tr := NewBTree(8)
	words := []string{"pear", "apple", "fig", "banana", "cherry"}
	for i, w := range words {
		tr.Insert(Entry{Key: sqltype.Value{Type: sqltype.Varchar, S: w}, Doc: xmldoc.DocID(i)})
	}
	var got []string
	tr.All(func(e Entry) bool { got = append(got, e.Key.S); return true })
	want := []string{"apple", "banana", "cherry", "fig", "pear"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v", got)
		}
	}
}

func TestBulkLoad(t *testing.T) {
	var entries []Entry
	for i := 999; i >= 0; i-- { // reversed input; BulkLoad must sort
		entries = append(entries, dblEntry(float64(i), int64(i), 0))
	}
	// Add duplicates; they must collapse.
	entries = append(entries, dblEntry(5, 5, 0), dblEntry(6, 6, 0))
	tr := BulkLoad(32, entries, 0.7)
	if tr.Size() != 1000 {
		t.Fatalf("Size = %d, want 1000", tr.Size())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Height() < 2 {
		t.Errorf("height = %d, expected multi-level", tr.Height())
	}
	prev := -1.0
	tr.All(func(e Entry) bool {
		if e.Key.F <= prev {
			t.Fatalf("out of order: %f after %f", e.Key.F, prev)
		}
		prev = e.Key.F
		return true
	})
}

func TestBulkLoadEmpty(t *testing.T) {
	tr := BulkLoad(32, nil, 0.7)
	if tr.Size() != 0 {
		t.Errorf("Size = %d", tr.Size())
	}
	n := 0
	tr.All(func(Entry) bool { n++; return true })
	if n != 0 {
		t.Errorf("visited %d entries in empty tree", n)
	}
}

func TestNodesAccounting(t *testing.T) {
	tr := BulkLoad(8, genEntries(500), 0.7)
	leaves, inner := tr.Nodes()
	if leaves <= 1 || inner < 1 {
		t.Errorf("leaves=%d inner=%d for 500 entries order 8", leaves, inner)
	}
}

func genEntries(n int) []Entry {
	out := make([]Entry, n)
	for i := range out {
		out[i] = dblEntry(float64(i), int64(i), 0)
	}
	return out
}

// Property: after a random mix of inserts and deletes, the tree contains
// exactly the surviving set, in order, and validates.
func TestInsertDeleteProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := NewBTree(4 + rng.Intn(12))
		alive := map[int64]bool{}
		for op := 0; op < 300; op++ {
			k := int64(rng.Intn(60))
			if rng.Intn(3) > 0 {
				tr.Insert(dblEntry(float64(k), k, 0))
				alive[k] = true
			} else {
				deleted := tr.Delete(dblEntry(float64(k), k, 0))
				if deleted != alive[k] {
					return false
				}
				delete(alive, k)
			}
		}
		if tr.Size() != len(alive) {
			return false
		}
		if err := tr.Validate(); err != nil {
			return false
		}
		seen := map[int64]bool{}
		ok := true
		prev := -1.0
		tr.All(func(e Entry) bool {
			if e.Key.F < prev {
				ok = false
			}
			prev = e.Key.F
			seen[int64(e.Doc)] = true
			return true
		})
		if !ok || len(seen) != len(alive) {
			return false
		}
		for k := range alive {
			if !seen[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: BulkLoad and incremental Insert agree on contents.
func TestBulkVsIncrementalProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(400)
		var entries []Entry
		for i := 0; i < n; i++ {
			entries = append(entries, dblEntry(float64(rng.Intn(50)), int64(i), 0))
		}
		bulk := BulkLoad(16, entries, 0.7)
		inc := NewBTree(16)
		for _, e := range entries {
			inc.Insert(e)
		}
		if bulk.Size() != inc.Size() {
			return false
		}
		var a, b []Entry
		bulk.All(func(e Entry) bool { a = append(a, e); return true })
		inc.All(func(e Entry) bool { b = append(b, e); return true })
		for i := range a {
			if compareEntries(a[i], b[i]) != 0 {
				return false
			}
		}
		return bulk.Validate() == nil && inc.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func BenchmarkBTreeInsert(b *testing.B) {
	tr := NewBTree(DefaultOrder)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Insert(dblEntry(float64(i), int64(i), 0))
	}
}

func BenchmarkBTreeEqual(b *testing.B) {
	tr := BulkLoad(DefaultOrder, genEntries(100000), 0.7)
	v := sqltype.Value{Type: sqltype.Double, F: 50000}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Equal(v, func(Entry) bool { return true })
	}
}
