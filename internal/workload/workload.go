// Package workload defines the advisor's input: a set of weighted queries
// plus weighted data-modification statements (document inserts and
// deletes), with a plain text file format and split/scale helpers for the
// train-vs-actual workload experiments.
package workload

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"repro/internal/querylang"
	"repro/internal/xpath"
)

// Entry is one weighted query.
type Entry struct {
	Query *querylang.Query
	// Weight is the query's relative frequency in the workload.
	Weight float64
}

// UpdateKind distinguishes data modification statements.
type UpdateKind uint8

const (
	// UpdateInsert inserts a new document.
	UpdateInsert UpdateKind = iota
	// UpdateDelete deletes the documents selected by a path.
	UpdateDelete
)

// String names the kind.
func (k UpdateKind) String() string {
	if k == UpdateDelete {
		return "delete"
	}
	return "insert"
}

// Update is one weighted data-modification statement. Inserts carry a
// representative document; deletes carry a selection path. Either way the
// document's node paths determine which indexes pay maintenance.
type Update struct {
	Kind       UpdateKind
	Collection string
	Weight     float64

	// DocXML is a representative inserted document (inserts).
	DocXML string
	// Path selects the documents to delete (deletes).
	Path *xpath.PathExpr
}

// Workload is the advisor input.
type Workload struct {
	Name    string
	Queries []Entry
	Updates []Update
}

// QueryList returns the workload's queries in entry order — the unit a
// what-if evaluation costs a configuration over.
func (w *Workload) QueryList() []*querylang.Query {
	qs := make([]*querylang.Query, len(w.Queries))
	for i, e := range w.Queries {
		qs[i] = e.Query
	}
	return qs
}

// TotalQueryWeight sums the query weights.
func (w *Workload) TotalQueryWeight() float64 {
	var t float64
	for _, e := range w.Queries {
		t += e.Weight
	}
	return t
}

// TotalUpdateWeight sums the update weights.
func (w *Workload) TotalUpdateWeight() float64 {
	var t float64
	for _, u := range w.Updates {
		t += u.Weight
	}
	return t
}

// Collections returns the distinct collections referenced, in first-use
// order.
func (w *Workload) Collections() []string {
	seen := map[string]bool{}
	var out []string
	for _, e := range w.Queries {
		if c := e.Query.Collection; c != "" && !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	for _, u := range w.Updates {
		if !seen[u.Collection] {
			seen[u.Collection] = true
			out = append(out, u.Collection)
		}
	}
	return out
}

// AddQuery parses and appends a weighted query (language auto-detected).
func (w *Workload) AddQuery(weight float64, text string) error {
	q, err := querylang.ParseAuto(text)
	if err != nil {
		return err
	}
	q.ID = fmt.Sprintf("Q%d", len(w.Queries)+1)
	w.Queries = append(w.Queries, Entry{Query: q, Weight: weight})
	return nil
}

// MustAddQuery is AddQuery panicking on error, for generators.
func (w *Workload) MustAddQuery(weight float64, text string) {
	if err := w.AddQuery(weight, text); err != nil {
		panic(err)
	}
}

// AddInsert appends a weighted insert of the given document.
func (w *Workload) AddInsert(weight float64, collection, docXML string) {
	w.Updates = append(w.Updates, Update{
		Kind: UpdateInsert, Collection: collection, Weight: weight, DocXML: docXML,
	})
}

// AddDelete parses the selection path and appends a weighted delete.
func (w *Workload) AddDelete(weight float64, collection, path string) error {
	e, err := xpath.Parse(path)
	if err != nil {
		return err
	}
	w.Updates = append(w.Updates, Update{
		Kind: UpdateDelete, Collection: collection, Weight: weight, Path: e,
	})
	return nil
}

// ScaleUpdates multiplies every update weight by f (used by the update-
// cost sensitivity experiment).
func (w *Workload) ScaleUpdates(f float64) {
	for i := range w.Updates {
		w.Updates[i].Weight *= f
	}
}

// Split partitions the queries into train and test workloads, assigning
// each query to train with probability trainFrac (seeded, deterministic).
// Updates stay with the training workload.
func (w *Workload) Split(trainFrac float64, seed int64) (train, test *Workload) {
	rng := rand.New(rand.NewSource(seed))
	train = &Workload{Name: w.Name + "-train", Updates: w.Updates}
	test = &Workload{Name: w.Name + "-test"}
	for _, e := range w.Queries {
		if rng.Float64() < trainFrac {
			train.Queries = append(train.Queries, e)
		} else {
			test.Queries = append(test.Queries, e)
		}
	}
	return train, test
}

// Compress merges queries whose normalized legs are identical, summing
// their weights. Such queries are indistinguishable to the advisor (the
// optimizer sees only legs), so compression reduces Evaluate Indexes
// calls without changing any recommendation. The first query of each
// class is kept as the representative.
func (w *Workload) Compress() *Workload {
	out := &Workload{Name: w.Name + "-compressed", Updates: w.Updates}
	classes := map[string]int{} // leg signature -> index in out.Queries
	for _, e := range w.Queries {
		legs := e.Query.Legs()
		keys := make([]string, len(legs))
		for i, l := range legs {
			keys[i] = l.Key()
		}
		sort.Strings(keys)
		sig := e.Query.Collection + "||" + strings.Join(keys, "|")
		if i, ok := classes[sig]; ok {
			out.Queries[i].Weight += e.Weight
			continue
		}
		classes[sig] = len(out.Queries)
		out.Queries = append(out.Queries, Entry{Query: e.Query, Weight: e.Weight})
	}
	return out
}

// Parse reads the text format: one record per non-empty line, fields
// separated by '|'. Lines starting with '#' are comments.
//
//	q|<weight>|<query text>
//	i|<weight>|<collection>|<document xml>
//	d|<weight>|<collection>|<selection path>
func Parse(name, text string) (*Workload, error) {
	w := &Workload{Name: name}
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		kind, rest, ok := strings.Cut(line, "|")
		if !ok {
			return nil, fmt.Errorf("workload: line %d: missing fields", ln+1)
		}
		weightStr, rest, ok := strings.Cut(rest, "|")
		if !ok {
			return nil, fmt.Errorf("workload: line %d: missing weight separator", ln+1)
		}
		weight, err := strconv.ParseFloat(strings.TrimSpace(weightStr), 64)
		if err != nil || weight <= 0 {
			return nil, fmt.Errorf("workload: line %d: bad weight %q", ln+1, weightStr)
		}
		switch strings.TrimSpace(kind) {
		case "q":
			if err := w.AddQuery(weight, rest); err != nil {
				return nil, fmt.Errorf("workload: line %d: %w", ln+1, err)
			}
		case "i":
			coll, doc, ok := strings.Cut(rest, "|")
			if !ok {
				return nil, fmt.Errorf("workload: line %d: insert needs collection|xml", ln+1)
			}
			w.AddInsert(weight, strings.TrimSpace(coll), doc)
		case "d":
			coll, path, ok := strings.Cut(rest, "|")
			if !ok {
				return nil, fmt.Errorf("workload: line %d: delete needs collection|path", ln+1)
			}
			if err := w.AddDelete(weight, strings.TrimSpace(coll), strings.TrimSpace(path)); err != nil {
				return nil, fmt.Errorf("workload: line %d: %w", ln+1, err)
			}
		default:
			return nil, fmt.Errorf("workload: line %d: unknown record kind %q", ln+1, kind)
		}
	}
	return w, nil
}

// Format renders the workload back into the text format.
func (w *Workload) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "# workload %s: %d queries, %d updates\n", w.Name, len(w.Queries), len(w.Updates))
	for _, e := range w.Queries {
		fmt.Fprintf(&sb, "q|%g|%s\n", e.Weight, strings.ReplaceAll(e.Query.Text, "\n", " "))
	}
	for _, u := range w.Updates {
		switch u.Kind {
		case UpdateInsert:
			fmt.Fprintf(&sb, "i|%g|%s|%s\n", u.Weight, u.Collection, u.DocXML)
		case UpdateDelete:
			fmt.Fprintf(&sb, "d|%g|%s|%s\n", u.Weight, u.Collection, u.Path)
		}
	}
	return sb.String()
}
