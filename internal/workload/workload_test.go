package workload

import (
	"strings"
	"testing"
)

const sampleText = `# test workload
q|10|for $i in collection("items")/site/item where $i/price > 5 return $i/name
q|2|SELECT 1 FROM items WHERE XMLEXISTS('$d/site/item[quantity = 3]' PASSING doc AS "d")
i|1|items|<site><item><price>9</price></item></site>
d|0.5|items|/site/item[quantity = 0]
`

func TestParseAndFormatRoundTrip(t *testing.T) {
	w, err := Parse("test", sampleText)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Queries) != 2 || len(w.Updates) != 2 {
		t.Fatalf("parsed %d queries, %d updates", len(w.Queries), len(w.Updates))
	}
	if w.Queries[0].Weight != 10 || w.Queries[1].Weight != 2 {
		t.Error("weights wrong")
	}
	if w.Queries[0].Query.ID != "Q1" || w.Queries[1].Query.ID != "Q2" {
		t.Error("query IDs not assigned")
	}
	if w.Updates[0].Kind != UpdateInsert || w.Updates[1].Kind != UpdateDelete {
		t.Error("update kinds wrong")
	}
	if w.TotalQueryWeight() != 12 {
		t.Errorf("TotalQueryWeight = %f", w.TotalQueryWeight())
	}
	if w.TotalUpdateWeight() != 1.5 {
		t.Errorf("TotalUpdateWeight = %f", w.TotalUpdateWeight())
	}

	w2, err := Parse("rt", w.Format())
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, w.Format())
	}
	if len(w2.Queries) != len(w.Queries) || len(w2.Updates) != len(w.Updates) {
		t.Error("round trip lost records")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"x|1|whatever",
		"q|zero|for $i in collection(\"c\") return $i",
		"q|-3|for $i in collection(\"c\") return $i",
		"q|1|not a query at all !!!",
		"i|1|no-xml-field",
		"d|1|items|not a path",
		"q1 for ...",
		"q|1",
	}
	for _, line := range bad {
		if _, err := Parse("bad", line); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", line)
		}
	}
}

func TestCollections(t *testing.T) {
	w, _ := Parse("test", sampleText)
	cols := w.Collections()
	if len(cols) != 1 || cols[0] != "items" {
		t.Errorf("Collections = %v", cols)
	}
}

func TestSplitDeterministic(t *testing.T) {
	w := &Workload{Name: "s"}
	for i := 0; i < 40; i++ {
		w.MustAddQuery(1, `for $i in collection("c")/a/b return $i`)
	}
	tr1, te1 := w.Split(0.7, 42)
	tr2, te2 := w.Split(0.7, 42)
	if len(tr1.Queries) != len(tr2.Queries) || len(te1.Queries) != len(te2.Queries) {
		t.Error("Split not deterministic")
	}
	if len(tr1.Queries)+len(te1.Queries) != 40 {
		t.Error("Split lost queries")
	}
	if len(tr1.Queries) < 20 || len(tr1.Queries) > 36 {
		t.Errorf("train size %d implausible for frac 0.7", len(tr1.Queries))
	}
}

func TestScaleUpdates(t *testing.T) {
	w, _ := Parse("test", sampleText)
	before := w.TotalUpdateWeight()
	w.ScaleUpdates(4)
	if w.TotalUpdateWeight() != before*4 {
		t.Error("ScaleUpdates broken")
	}
}

func TestFormatMentionsCounts(t *testing.T) {
	w, _ := Parse("test", sampleText)
	if !strings.Contains(w.Format(), "2 queries, 2 updates") {
		t.Errorf("Format header: %s", w.Format())
	}
}

func TestCompressMergesEquivalentQueries(t *testing.T) {
	w := &Workload{Name: "c"}
	w.MustAddQuery(3, `for $i in collection("c")/a/b where $i/x > 5 return $i/y`)
	w.MustAddQuery(4, `for $j in collection("c")/a/b where $j/x > 5 return $j/y`) // same legs, different var
	w.MustAddQuery(2, `for $i in collection("c")/a/b where $i/x > 6 return $i/y`) // different constant
	w.AddInsert(1, "c", "<a/>")
	cw := w.Compress()
	if len(cw.Queries) != 2 {
		t.Fatalf("compressed to %d queries, want 2", len(cw.Queries))
	}
	if cw.Queries[0].Weight != 7 {
		t.Errorf("merged weight = %f, want 7", cw.Queries[0].Weight)
	}
	if cw.TotalQueryWeight() != w.TotalQueryWeight() {
		t.Error("compression changed total weight")
	}
	if len(cw.Updates) != 1 {
		t.Error("updates lost")
	}
}

func TestCompressKeepsDistinctCollections(t *testing.T) {
	w := &Workload{}
	w.MustAddQuery(1, `for $i in collection("c1")/a/b return $i`)
	w.MustAddQuery(1, `for $i in collection("c2")/a/b return $i`)
	if got := len(w.Compress().Queries); got != 2 {
		t.Errorf("cross-collection queries merged: %d", got)
	}
}
