package whatif

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/catalog"
)

// TestEvaluateConfigBatchMatchesSingle checks the batch entry point is
// observationally identical to per-config EvaluateConfig: same values,
// same caching (one miss per distinct atom, duplicate sub-configs
// inside the batch join the owner), and a warm second batch costs zero
// service calls.
func TestEvaluateConfigBatchMatchesSingle(t *testing.T) {
	ctx := context.Background()
	qs := testQueries(4)
	i1, i2, i3 := testDef("I1", "c", "/a/b"), testDef("I2", "c", "/a/c"), testDef("I3", "c", "/a/d")
	configs := [][]*catalog.IndexDef{
		{i1},
		{i1, i2},
		nil,      // empty configuration
		{i2, i1}, // permutation of configs[1]: must join, not re-evaluate
		{i3},
		{i1}, // duplicate of configs[0]
	}

	// Reference values from the single-config path on its own engine.
	ref := NewEngine(&fakeService{}, Options{Workers: 4}).Bind(qs)
	want := make([]*ConfigEval, len(configs))
	for i, cfg := range configs {
		var err error
		want[i], err = ref.EvaluateConfig(ctx, cfg)
		if err != nil {
			t.Fatal(err)
		}
	}

	svc := &fakeService{}
	e := NewEngine(svc, Options{Workers: 4})
	b := e.Bind(qs)
	got, err := b.EvaluateConfigBatch(ctx, configs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(configs) {
		t.Fatalf("batch returned %d results, want %d", len(got), len(configs))
	}
	for i, g := range got {
		if g == nil {
			t.Fatalf("config %d: nil result", i)
		}
		for qi := range qs {
			if g.Queries[qi].Cost != want[i].Queries[qi].Cost {
				t.Errorf("config %d query %d: cost %f, want %f", i, qi, g.Queries[qi].Cost, want[i].Queries[qi].Cost)
			}
		}
	}
	// Duplicates join the owner's atoms, not a second evaluation: every
	// atom of the duplicate configs resolves as a hit inside the batch.
	for _, ci := range []int{3, 5} {
		for qi := range qs {
			if !got[ci].Atoms[qi].Hit {
				t.Errorf("duplicate config %d query %d was not served by the in-batch owner", ci, qi)
			}
		}
	}
	distinct := 4 // {i1}, {i1,i2}, {}, {i3}
	if st := e.Stats(); st.Misses != int64(distinct*len(qs)) {
		t.Errorf("misses = %d, want %d (one per distinct atom)", st.Misses, distinct*len(qs))
	}
	if calls := svc.calls.Load(); calls != int64(distinct*len(qs)) {
		t.Errorf("service calls = %d, want %d", calls, distinct*len(qs))
	}

	// A warm repeat is pure cache hits.
	before := svc.calls.Load()
	again, err := b.EvaluateConfigBatch(ctx, configs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range again {
		if !reflect.DeepEqual(again[i].Queries, got[i].Queries) {
			t.Errorf("config %d: warm batch did not return the cached values", i)
		}
	}
	if calls := svc.calls.Load(); calls != before {
		t.Errorf("warm batch issued %d service calls", calls-before)
	}
}

// TestEvaluateConfigBatchErrors checks a failing backend surfaces the
// error and leaves nothing poisoned in the cache.
func TestEvaluateConfigBatchErrors(t *testing.T) {
	ctx := context.Background()
	qs := testQueries(3)
	svc := &fakeService{fail: true}
	e := NewEngine(svc, Options{Workers: 2})
	b := e.Bind(qs)
	configs := [][]*catalog.IndexDef{{testDef("I1", "c", "/a/b")}, {testDef("I2", "c", "/a/c")}}
	if _, err := b.EvaluateConfigBatch(ctx, configs); err == nil {
		t.Fatal("batch over a failing service returned no error")
	}
	if n := e.Len(); n != 0 {
		t.Fatalf("failed evaluations left %d cache entries", n)
	}
	// The same configs succeed once the backend recovers.
	svc.fail = false
	res, err := b.EvaluateConfigBatch(ctx, configs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || res[0] == nil || res[1] == nil {
		t.Fatalf("recovered batch returned %v", res)
	}
}
