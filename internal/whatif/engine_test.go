package whatif

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/pattern"
	"repro/internal/querylang"
	"repro/internal/sqltype"
)

// fakeService is a controllable CostService: cost = base + 10 per
// applicable config index, so results are a pure function of the inputs.
type fakeService struct {
	calls atomic.Int64
	// block, when non-nil, is waited on before answering.
	block chan struct{}
	// blockOn restricts blocking to configs containing this def name
	// (empty = every call blocks).
	blockOn string
	// fail makes every call error.
	fail bool
}

func (f *fakeService) EvaluateQuery(ctx context.Context, q *querylang.Query, config []*catalog.IndexDef) (QueryEval, error) {
	f.calls.Add(1)
	blocked := f.block != nil
	if blocked && f.blockOn != "" {
		blocked = false
		for _, d := range config {
			if d.Name == f.blockOn {
				blocked = true
				break
			}
		}
	}
	if blocked {
		select {
		case <-f.block:
		case <-ctx.Done():
			return QueryEval{}, ctx.Err()
		}
	}
	if f.fail {
		return QueryEval{}, errors.New("fake failure")
	}
	base := float64(100 + len(q.ID))
	ev := QueryEval{CostNoIndexes: base, Cost: base}
	for _, d := range config {
		ev.Cost -= 10
		ev.UsedIndexes = append(ev.UsedIndexes, d.Name)
	}
	return ev, nil
}

func testQueries(n int) []*querylang.Query {
	out := make([]*querylang.Query, n)
	for i := range out {
		out[i] = &querylang.Query{ID: fmt.Sprintf("Q%d", i+1), Collection: "c", Text: fmt.Sprintf("query %d", i+1)}
	}
	return out
}

func testDef(name, coll, pat string) *catalog.IndexDef {
	return &catalog.IndexDef{Name: name, Collection: coll, Pattern: pattern.MustParse(pat), Type: sqltype.Varchar, Virtual: true}
}

func TestEvaluateConfigMemoizes(t *testing.T) {
	svc := &fakeService{}
	e := NewEngine(svc, Options{Workers: 4})
	qs := testQueries(5)
	cfg := []*catalog.IndexDef{testDef("I1", "c", "/a/b"), testDef("I2", "c", "/a/c")}

	first, err := e.EvaluateConfig(context.Background(), qs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Queries) != 5 {
		t.Fatalf("got %d query evals", len(first.Queries))
	}
	for i, qe := range first.Queries {
		want := float64(100+len(qs[i].ID)) - 20
		if qe.Cost != want {
			t.Errorf("q%d cost = %f, want %f", i, qe.Cost, want)
		}
	}
	for qi, ai := range first.Atoms {
		if ai.Hit || ai.Relevant != 2 {
			t.Errorf("cold atom %d = %+v, want miss with 2 relevant defs", qi, ai)
		}
	}
	again, err := e.EvaluateConfig(context.Background(), qs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again.Queries, first.Queries) {
		t.Error("second evaluation did not return the cached values")
	}
	for qi, ai := range again.Atoms {
		if !ai.Hit {
			t.Errorf("warm atom %d was not served from the cache", qi)
		}
	}
	// A permutation of the same configuration must also hit.
	if _, err := e.EvaluateConfig(context.Background(), qs, []*catalog.IndexDef{cfg[1], cfg[0]}); err != nil {
		t.Fatal(err)
	}
	// One atom per (query, sub-config): 5 cold misses, then two warm
	// passes of 5 hits each.
	st := e.Stats()
	if st.Misses != 5 || st.Hits != 10 {
		t.Errorf("stats = %+v, want 5 misses / 10 hits", st)
	}
	if got := svc.calls.Load(); got != 5 {
		t.Errorf("service called %d times, want 5", got)
	}
}

// TestConcurrentEvaluationsAgree hammers the engine from many goroutines
// over a handful of distinct configurations (run with -race).
func TestConcurrentEvaluationsAgree(t *testing.T) {
	svc := &fakeService{}
	e := NewEngine(svc, Options{Workers: 8})
	qs := testQueries(8)
	configs := make([][]*catalog.IndexDef, 6)
	for i := range configs {
		for j := 0; j <= i; j++ {
			configs[i] = append(configs[i], testDef(fmt.Sprintf("I%d", j), "c", fmt.Sprintf("/a/p%d", j)))
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, 60)
	for g := 0; g < 10; g++ {
		for ci, cfg := range configs {
			wg.Add(1)
			go func(ci int, cfg []*catalog.IndexDef) {
				defer wg.Done()
				res, err := e.EvaluateConfig(context.Background(), qs, cfg)
				if err != nil {
					errs <- err
					return
				}
				for i, qe := range res.Queries {
					want := float64(100+len(qs[i].ID)) - 10*float64(ci+1)
					if qe.Cost != want {
						errs <- fmt.Errorf("config %d q%d: cost %f want %f", ci, i, qe.Cost, want)
						return
					}
				}
			}(ci, cfg)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st := e.Stats()
	if want := int64(len(configs) * len(qs)); st.Misses != want {
		t.Errorf("misses = %d, want %d (singleflight dedup per atom)", st.Misses, want)
	}
	if want := int64(len(configs) * len(qs)); st.Evaluations != want {
		t.Errorf("evaluations = %d, want %d", st.Evaluations, want)
	}
}

// TestSingleflightDedup verifies that concurrent requests for one
// configuration share a single in-flight evaluation.
func TestSingleflightDedup(t *testing.T) {
	svc := &fakeService{block: make(chan struct{})}
	e := NewEngine(svc, Options{Workers: 2})
	qs := testQueries(1)
	cfg := []*catalog.IndexDef{testDef("I1", "c", "/a")}

	const waiters = 20
	var wg sync.WaitGroup
	results := make([]*ConfigEval, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := e.EvaluateConfig(context.Background(), qs, cfg)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = res
		}(i)
	}
	// Let the waiters pile up on the single in-flight entry, then
	// release the backend.
	time.Sleep(20 * time.Millisecond)
	close(svc.block)
	wg.Wait()

	if got := svc.calls.Load(); got != 1 {
		t.Errorf("service called %d times, want 1", got)
	}
	for i := 1; i < waiters; i++ {
		if !reflect.DeepEqual(results[i].Queries, results[0].Queries) {
			t.Fatal("waiters observed different results")
		}
	}
	st := e.Stats()
	if st.Misses != 1 || st.Hits != waiters-1 {
		t.Errorf("stats = %+v, want 1 miss / %d hits", st, waiters-1)
	}
}

// TestConfigKeyNoCollisions: definitions whose naive field concatenation
// would be identical must still produce distinct keys.
func TestConfigKeyNoCollisions(t *testing.T) {
	cases := [][2][]*catalog.IndexDef{
		// name/collection boundary shifts: "AB"+"C" vs "A"+"BC".
		{
			{testDef("AB", "C", "/a")},
			{testDef("A", "BC", "/a")},
		},
		// one two-field def vs two defs sharing the halves.
		{
			{testDef("X", "c", "/a"), testDef("Y", "c", "/b")},
			{testDef("XY", "c", "/a"), testDef("", "c", "/b")},
		},
		// type vs pattern tail.
		{
			{testDef("N", "c", "/a/b")},
			{testDef("N", "c", "/a")},
		},
	}
	for i, pair := range cases {
		if ConfigKey(pair[0]) == ConfigKey(pair[1]) {
			t.Errorf("case %d: distinct configs share key %q", i, ConfigKey(pair[0]))
		}
	}
	// Same config in any order is the same key.
	a := []*catalog.IndexDef{testDef("I1", "c", "/a"), testDef("I2", "c", "/b")}
	b := []*catalog.IndexDef{a[1], a[0]}
	if ConfigKey(a) != ConfigKey(b) {
		t.Error("config key is order-sensitive")
	}

	// Distinct workloads must not share cache entries even for the
	// same configuration.
	svc := &fakeService{}
	e := NewEngine(svc, Options{})
	cfg := []*catalog.IndexDef{testDef("I1", "c", "/a")}
	q1 := []*querylang.Query{{ID: "Q1", Collection: "c", Text: "t1"}}
	q2 := []*querylang.Query{{ID: "Q1", Collection: "c", Text: "t2"}}
	if _, err := e.EvaluateConfig(context.Background(), q1, cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := e.EvaluateConfig(context.Background(), q2, cfg); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.Misses != 2 {
		t.Errorf("misses = %d, want 2 (per-workload keyspace)", st.Misses)
	}
}

func TestContextCancellation(t *testing.T) {
	svc := &fakeService{block: make(chan struct{})} // never released
	e := NewEngine(svc, Options{Workers: 2})
	qs := testQueries(4)
	cfg := []*catalog.IndexDef{testDef("I1", "c", "/a")}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := e.EvaluateConfig(ctx, qs, cfg)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancellation did not unblock the evaluation")
	}

	// A pre-cancelled context returns immediately without touching the
	// backend again; the failed entry was not cached.
	before := svc.calls.Load()
	cancelled, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if _, err := e.EvaluateConfig(cancelled, qs, cfg); !errors.Is(err, context.Canceled) {
		t.Errorf("pre-cancelled err = %v", err)
	}
	if e.Len() != 0 {
		t.Errorf("failed evaluations were cached (len=%d)", e.Len())
	}
	_ = before
}

// TestWaiterCancellation: a waiter joining an in-flight evaluation must
// honor its own context even while the owner keeps computing.
func TestWaiterCancellation(t *testing.T) {
	svc := &fakeService{block: make(chan struct{})}
	e := NewEngine(svc, Options{Workers: 1})
	qs := testQueries(1)
	cfg := []*catalog.IndexDef{testDef("I1", "c", "/a")}

	go e.EvaluateConfig(context.Background(), qs, cfg) // owner, blocked
	time.Sleep(10 * time.Millisecond)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := e.EvaluateConfig(ctx, qs, cfg)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("waiter err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("waiter did not honor its context")
	}
	close(svc.block) // let the owner finish
}

// TestWaiterRetriesAfterOwnerCancellation: when the computing caller's
// own context dies mid-evaluation, a waiter with a live context must
// not inherit that cancellation — it retries and succeeds.
func TestWaiterRetriesAfterOwnerCancellation(t *testing.T) {
	svc := &fakeService{block: make(chan struct{})}
	e := NewEngine(svc, Options{Workers: 2})
	qs := testQueries(1)
	cfg := []*catalog.IndexDef{testDef("I1", "c", "/a")}

	ownerCtx, cancelOwner := context.WithCancel(context.Background())
	ownerDone := make(chan error, 1)
	go func() {
		_, err := e.EvaluateConfig(ownerCtx, qs, cfg)
		ownerDone <- err
	}()
	time.Sleep(10 * time.Millisecond)

	waiterDone := make(chan error, 1)
	go func() {
		_, err := e.EvaluateConfig(context.Background(), qs, cfg)
		waiterDone <- err
	}()
	time.Sleep(10 * time.Millisecond)

	// Kill the owner; its evaluation fails with context.Canceled. The
	// waiter must retry as the new owner; unblock the backend so that
	// retry completes.
	cancelOwner()
	if err := <-ownerDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("owner err = %v, want context.Canceled", err)
	}
	close(svc.block)
	select {
	case err := <-waiterDone:
		if err != nil {
			t.Errorf("waiter inherited the owner's cancellation: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("waiter never completed")
	}
}

func TestErrorsAreNotCached(t *testing.T) {
	svc := &fakeService{fail: true}
	e := NewEngine(svc, Options{})
	qs := testQueries(2)
	cfg := []*catalog.IndexDef{testDef("I1", "c", "/a")}
	if _, err := e.EvaluateConfig(context.Background(), qs, cfg); err == nil {
		t.Fatal("expected error")
	}
	svc.fail = false
	res, err := e.EvaluateConfig(context.Background(), qs, cfg)
	if err != nil || res == nil {
		t.Fatalf("retry after failure: %v", err)
	}
	if st := e.Stats(); st.Misses != 4 {
		t.Errorf("misses = %d, want 4 (2 queries x 2 attempts, error atoms evicted)", st.Misses)
	}
}

func TestFlushInvalidatesCache(t *testing.T) {
	svc := &fakeService{}
	e := NewEngine(svc, Options{})
	qs := testQueries(2)
	cfg := []*catalog.IndexDef{testDef("I1", "c", "/a")}
	if _, err := e.EvaluateConfig(context.Background(), qs, cfg); err != nil {
		t.Fatal(err)
	}
	if e.Len() != 2 {
		t.Fatalf("len = %d before flush, want one atom per query", e.Len())
	}
	e.Flush()
	if e.Len() != 0 {
		t.Fatalf("len = %d after flush", e.Len())
	}
	// The next evaluation is a miss and hits the backend again.
	if _, err := e.EvaluateConfig(context.Background(), qs, cfg); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.Misses != 4 {
		t.Errorf("misses = %d, want 4 (flushed atoms re-evaluated)", st.Misses)
	}
	if got := svc.calls.Load(); got != 4 {
		t.Errorf("service called %d times, want 4", got)
	}
}

func TestCacheEviction(t *testing.T) {
	svc := &fakeService{}
	e := NewEngine(svc, Options{Shards: 1, MaxEntries: 4})
	qs := testQueries(1)
	for i := 0; i < 20; i++ {
		cfg := []*catalog.IndexDef{testDef(fmt.Sprintf("I%d", i), "c", "/a")}
		if _, err := e.EvaluateConfig(context.Background(), qs, cfg); err != nil {
			t.Fatal(err)
		}
	}
	if n := e.Len(); n > 4 {
		t.Errorf("cache holds %d entries, cap 4", n)
	}
}

// TestCacheOvershootHeals: a slow in-flight evaluation at the FIFO head
// must not pin the shard above its cap — later completed entries behind
// the head are evicted instead.
func TestCacheOvershootHeals(t *testing.T) {
	svc := &fakeService{block: make(chan struct{}), blockOn: "HOT"}
	e := NewEngine(svc, Options{Shards: 1, MaxEntries: 2, Workers: 4})
	qs := testQueries(1)

	hotDone := make(chan struct{})
	go func() {
		defer close(hotDone)
		e.EvaluateConfig(context.Background(), qs, []*catalog.IndexDef{testDef("HOT", "c", "/hot")})
	}()
	time.Sleep(10 * time.Millisecond) // HOT is now the in-flight head

	for i := 0; i < 8; i++ {
		cfg := []*catalog.IndexDef{testDef(fmt.Sprintf("I%d", i), "c", "/a")}
		if _, err := e.EvaluateConfig(context.Background(), qs, cfg); err != nil {
			t.Fatal(err)
		}
		if n := e.Len(); n > 2 {
			t.Fatalf("insert %d: cache holds %d entries, cap 2 (in-flight head pinned the overshoot)", i, n)
		}
	}
	close(svc.block)
	<-hotDone
	if n := e.Len(); n > 2 {
		t.Errorf("after head completed: %d entries, cap 2", n)
	}
}

func TestCollectionFiltering(t *testing.T) {
	svc := &fakeService{}
	e := NewEngine(svc, Options{})
	qs := []*querylang.Query{{ID: "Q1", Collection: "a", Text: "qa"}, {ID: "Q2", Collection: "b", Text: "qb"}}
	cfg := []*catalog.IndexDef{testDef("IA", "a", "/x"), testDef("IB", "b", "/y")}
	res, err := e.EvaluateConfig(context.Background(), qs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Queries[0].UsedIndexes; len(got) != 1 || got[0] != "IA" {
		t.Errorf("collection a saw %v", got)
	}
	if got := res.Queries[1].UsedIndexes; len(got) != 1 || got[0] != "IB" {
		t.Errorf("collection b saw %v", got)
	}
}
