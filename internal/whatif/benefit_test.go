package whatif

import "testing"

func TestBenefitMatrix(t *testing.T) {
	m := &BenefitMatrix{
		NumQueries: 4,
		Rows: [][]BenefitEntry{
			{{Query: 0, Benefit: 2}, {Query: 3, Benefit: 5}},
			{},
			{{Query: 1, Benefit: 1}},
		},
		Private: []float64{0.5, 0, 0},
	}
	if got := m.Entry(0, 3); got != 5 {
		t.Errorf("Entry(0,3) = %f, want 5", got)
	}
	if got := m.Entry(0, 2); got != 0 {
		t.Errorf("Entry(0,2) = %f, want 0", got)
	}
	if got := m.Entry(1, 0); got != 0 {
		t.Errorf("Entry(1,0) = %f, want 0", got)
	}
	if got := m.StandaloneBenefit(0); got != 7.5 {
		t.Errorf("StandaloneBenefit(0) = %f, want 7.5", got)
	}
	if got := m.StandaloneBenefit(2); got != 1 {
		t.Errorf("StandaloneBenefit(2) = %f, want 1", got)
	}
	if got := m.NonZero(); got != 3 {
		t.Errorf("NonZero = %d, want 3", got)
	}
}
