package whatif

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/catalog"
	"repro/internal/querylang"
)

// ErrCircuitOpen reports that the resilient middleware's circuit
// breaker rejected (or cut short) a CostService call because the
// backend is failing. Callers match it with errors.Is; the search
// layer treats it as the signal to degrade to a best-so-far result
// instead of failing the whole recommendation.
var ErrCircuitOpen = errors.New("whatif: circuit breaker open")

// PanicError is a panic recovered at a resilience boundary (the
// ResilientService call wrapper, the Engine's worker goroutines, or a
// race portfolio member), converted into an ordinary error so one
// misbehaving cost backend or strategy cannot kill the process. It
// carries the recovered value and the goroutine stack at recovery.
type PanicError struct {
	// Op names the boundary that recovered the panic.
	Op string
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack captured at recovery.
	Stack []byte
}

// NewPanicError captures the current goroutine stack around a
// recovered panic value.
func NewPanicError(op string, value any) *PanicError {
	return &PanicError{Op: op, Value: value, Stack: debug.Stack()}
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("%s: recovered panic: %v", e.Op, e.Value)
}

// ResilienceStats are the monotonic counters of a ResilientService
// (plus any panics the Engine itself recovered). They surface through
// whatif.Stats so every existing stats pipeline (advisor response,
// xia/xdb output, healthz) sees them without new plumbing.
type ResilienceStats struct {
	// Retries counts re-attempted CostService calls (not first tries).
	Retries int64 `json:"retries,omitempty"`
	// BreakerTrips counts transitions to the open state.
	BreakerTrips int64 `json:"breakerTrips,omitempty"`
	// BreakerRejects counts calls refused outright while open.
	BreakerRejects int64 `json:"breakerRejects,omitempty"`
	// CallTimeouts counts attempts cut off by the per-call timeout
	// while the caller's own context was still live.
	CallTimeouts int64 `json:"callTimeouts,omitempty"`
	// PanicsRecovered counts panics converted into PanicError.
	PanicsRecovered int64 `json:"panicsRecovered,omitempty"`
}

// ResilienceSource is implemented by CostServices that keep resilience
// counters; the Engine merges them into its Stats snapshot.
type ResilienceSource interface {
	ResilienceCounters() ResilienceStats
}

// BreakerStater is implemented by CostServices whose health can be
// probed (directly or through wrapping); the advisor uses it to report
// a degraded state on /v1/healthz while a breaker is open.
type BreakerStater interface {
	State() BreakerState
}

// BreakerState is the circuit breaker's state.
type BreakerState int32

const (
	// BreakerClosed: calls flow normally; consecutive failures are
	// counted.
	BreakerClosed BreakerState = iota
	// BreakerOpen: calls are rejected with ErrCircuitOpen until the
	// open interval elapses.
	BreakerOpen
	// BreakerHalfOpen: a bounded number of probe calls are admitted;
	// enough successes close the breaker, any failure re-opens it.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return fmt.Sprintf("BreakerState(%d)", int32(s))
}

// ResilientOptions tune the ResilientService. The zero value is valid:
// every field falls back to the default noted on it.
type ResilientOptions struct {
	// CallTimeout bounds each individual CostService attempt; 0
	// disables the per-attempt timeout (the caller's context still
	// applies).
	CallTimeout time.Duration
	// MaxRetries is how many times a failed attempt is retried
	// (so MaxRetries+1 attempts total); negative means 0. Default 3.
	MaxRetries int
	// RetryBase is the backoff before the first retry; it doubles per
	// attempt up to RetryMax. Default 5ms.
	RetryBase time.Duration
	// RetryMax caps the backoff. Default 250ms.
	RetryMax time.Duration
	// Seed drives the deterministic backoff jitter: the same seed and
	// call sequence reproduce the same waits exactly.
	Seed uint64
	// FailureThreshold is how many consecutive failures open the
	// breaker. Default 5.
	FailureThreshold int
	// OpenFor is how long the breaker stays open before admitting
	// half-open probes. Default 2s.
	OpenFor time.Duration
	// HalfOpenProbes is how many concurrent probe calls the half-open
	// state admits, and how many must succeed to close. Default 1.
	HalfOpenProbes int
	// Now and Sleep are the clock, injectable for tests. Defaults:
	// time.Now and a timer-based context-respecting sleep.
	Now   func() time.Time
	Sleep func(ctx context.Context, d time.Duration) error
}

// WithDefaults returns the options with every unset knob replaced by
// its production default — the exact configuration NewResilientService
// runs with, so callers (the xiad startup log) can report effective
// values.
func (o ResilientOptions) WithDefaults() ResilientOptions {
	if o.MaxRetries < 0 {
		o.MaxRetries = 0
	} else if o.MaxRetries == 0 {
		o.MaxRetries = 3
	}
	if o.RetryBase <= 0 {
		o.RetryBase = 5 * time.Millisecond
	}
	if o.RetryMax <= 0 {
		o.RetryMax = 250 * time.Millisecond
	}
	if o.FailureThreshold <= 0 {
		o.FailureThreshold = 5
	}
	if o.OpenFor <= 0 {
		o.OpenFor = 2 * time.Second
	}
	if o.HalfOpenProbes <= 0 {
		o.HalfOpenProbes = 1
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	if o.Sleep == nil {
		o.Sleep = sleepCtx
	}
	return o
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// ResilientService is CostService middleware that isolates the caller
// from a misbehaving backend: each call gets a per-attempt timeout,
// bounded retries with exponential backoff and deterministic jitter,
// and panic containment; consecutive failures open a circuit breaker
// that fails fast (ErrCircuitOpen) until a cool-down admits half-open
// probes again. It composes transparently with RelevanceService, so
// the Engine's relevance projection keeps working through it. Safe for
// concurrent use.
//
// Layer it *under* the Engine (Engine → ResilientService → backend):
// that way transient faults the retries absorb are invisible to the
// engine's batch evaluation, and cached atoms keep serving even while
// the breaker is open.
type ResilientService struct {
	inner CostService
	rel   RelevanceService // inner as RelevanceService, or nil
	opts  ResilientOptions

	seq atomic.Uint64 // call sequence, salts the jitter

	mu        sync.Mutex
	state     BreakerState
	failures  int // consecutive failures while closed
	openedAt  time.Time
	probes    int // admitted, unresolved half-open probes
	probeWins int // successful probes this half-open cycle

	retries, trips, rejects, timeouts, panics atomic.Int64
}

// NewResilientService wraps inner with timeouts, retries, and a
// circuit breaker. See ResilientOptions for defaults.
func NewResilientService(inner CostService, o ResilientOptions) *ResilientService {
	s := &ResilientService{inner: inner, opts: o.WithDefaults()}
	if rs, ok := inner.(RelevanceService); ok {
		s.rel = rs
	}
	return s
}

// RelevantFilter implements RelevanceService by delegating to the
// wrapped service; when the inner service does not implement it, the
// returned predicate is nil, which the Engine treats as
// collection-only projection — exactly the behavior it would get from
// the inner service directly.
func (s *ResilientService) RelevantFilter(q *querylang.Query) func(*catalog.IndexDef) bool {
	if s.rel == nil {
		return nil
	}
	return s.rel.RelevantFilter(q)
}

// State returns the breaker's current state, advancing open→half-open
// when the cool-down has elapsed so health probes see the same state a
// call would.
func (s *ResilientService) State() BreakerState {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state == BreakerOpen && s.opts.Now().Sub(s.openedAt) >= s.opts.OpenFor {
		return BreakerHalfOpen
	}
	return s.state
}

// ResilienceCounters implements ResilienceSource.
func (s *ResilientService) ResilienceCounters() ResilienceStats {
	return ResilienceStats{
		Retries:         s.retries.Load(),
		BreakerTrips:    s.trips.Load(),
		BreakerRejects:  s.rejects.Load(),
		CallTimeouts:    s.timeouts.Load(),
		PanicsRecovered: s.panics.Load(),
	}
}

// admit decides whether a call may proceed. probe reports that the
// call is a half-open probe whose outcome resolves the breaker.
func (s *ResilientService) admit() (probe bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch s.state {
	case BreakerClosed:
		return false, nil
	case BreakerOpen:
		if s.opts.Now().Sub(s.openedAt) < s.opts.OpenFor {
			s.rejects.Add(1)
			return false, fmt.Errorf("%w (cooling down)", ErrCircuitOpen)
		}
		s.state = BreakerHalfOpen
		s.probes = 0
		s.probeWins = 0
		fallthrough
	case BreakerHalfOpen:
		if s.probes < s.opts.HalfOpenProbes {
			s.probes++
			return true, nil
		}
		s.rejects.Add(1)
		return false, fmt.Errorf("%w (half-open, probes saturated)", ErrCircuitOpen)
	}
	return false, nil
}

// record feeds one call outcome into the breaker and reports whether
// this outcome tripped it open.
func (s *ResilientService) record(success, probe bool) (tripped bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if probe {
		s.probes--
		if success {
			s.probeWins++
			if s.probeWins >= s.opts.HalfOpenProbes {
				s.state = BreakerClosed
				s.failures = 0
			}
			return false
		}
		s.state = BreakerOpen
		s.openedAt = s.opts.Now()
		s.trips.Add(1)
		return true
	}
	if success {
		s.failures = 0
		return false
	}
	s.failures++
	if s.state == BreakerClosed && s.failures >= s.opts.FailureThreshold {
		s.state = BreakerOpen
		s.openedAt = s.opts.Now()
		s.failures = 0
		s.trips.Add(1)
		return true
	}
	return false
}

// attempt runs one inner call under the per-attempt timeout, with
// panic containment. timedOut reports that the attempt's own deadline
// (not the caller's) cut it off.
func (s *ResilientService) attempt(ctx context.Context, q *querylang.Query, config []*catalog.IndexDef) (ev QueryEval, timedOut bool, err error) {
	actx := ctx
	var cancel context.CancelFunc
	if s.opts.CallTimeout > 0 {
		actx, cancel = context.WithTimeout(ctx, s.opts.CallTimeout)
		defer cancel()
	}
	func() {
		defer func() {
			if r := recover(); r != nil {
				s.panics.Add(1)
				err = NewPanicError("whatif: resilient CostService call", r)
			}
		}()
		ev, err = s.inner.EvaluateQuery(actx, q, config)
	}()
	if err != nil && ctx.Err() == nil && actx.Err() != nil {
		s.timeouts.Add(1)
		return QueryEval{}, true, fmt.Errorf("whatif: call timed out after %s: %w", s.opts.CallTimeout, err)
	}
	return ev, false, err
}

// EvaluateQuery implements CostService with timeouts, retries, and the
// breaker. Errors that trip the breaker are wrapped so that
// errors.Is(err, ErrCircuitOpen) holds from the very first failing
// call of an outage — the degradation path does not have to wait for a
// second request to observe the open state.
func (s *ResilientService) EvaluateQuery(ctx context.Context, q *querylang.Query, config []*catalog.IndexDef) (QueryEval, error) {
	seq := s.seq.Add(1)
	for attempt := 0; ; attempt++ {
		probe, err := s.admit()
		if err != nil {
			return QueryEval{}, err
		}
		if err := ctx.Err(); err != nil {
			// The caller is gone; resolve the probe slot without
			// judging the backend.
			if probe {
				s.mu.Lock()
				s.probes--
				s.mu.Unlock()
			}
			return QueryEval{}, err
		}
		ev, timedOut, err := s.attempt(ctx, q, config)
		if err == nil {
			s.record(true, probe)
			return ev, nil
		}
		if ctx.Err() != nil && !timedOut {
			// The caller's own context ended; not the backend's fault.
			if probe {
				s.mu.Lock()
				s.probes--
				s.mu.Unlock()
			}
			return QueryEval{}, err
		}
		tripped := s.record(false, probe)
		if tripped {
			return QueryEval{}, fmt.Errorf("%w (tripped by: %w)", ErrCircuitOpen, err)
		}
		var pe *PanicError
		if errors.As(err, &pe) || errors.Is(err, ErrCircuitOpen) || attempt >= s.opts.MaxRetries {
			return QueryEval{}, err
		}
		s.retries.Add(1)
		if serr := s.opts.Sleep(ctx, s.backoff(seq, attempt)); serr != nil {
			return QueryEval{}, serr
		}
	}
}

// backoff is the wait before retrying the (attempt+1)-th time:
// exponential from RetryBase capped at RetryMax, scaled into
// [50%, 100%] by a deterministic jitter derived from the seed, the
// call sequence number, and the attempt — the same schedule replays
// identically for the same seed.
func (s *ResilientService) backoff(seq uint64, attempt int) time.Duration {
	d := s.opts.RetryBase << uint(attempt)
	if d <= 0 || d > s.opts.RetryMax {
		d = s.opts.RetryMax
	}
	u := splitmix64(s.opts.Seed ^ (seq*0x9e3779b97f4a7c15 + uint64(attempt) + 1))
	frac := float64(u>>11) / float64(1<<53) // [0, 1)
	return time.Duration(float64(d) * (0.5 + 0.5*frac))
}

// splitmix64 is the SplitMix64 mixer: a full-period bijection whose
// output is well distributed for any input, used for cheap
// deterministic per-call randomness without shared RNG state.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
