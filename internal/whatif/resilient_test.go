package whatif

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/querylang"
)

// scriptService fails the first failN calls, then succeeds; optionally
// panics or hangs instead.
type scriptService struct {
	calls   atomic.Int64
	failN   int64
	panicN  int64 // calls ≤ panicN panic
	hang    bool  // block until ctx done
	baseErr error
}

func (s *scriptService) EvaluateQuery(ctx context.Context, q *querylang.Query, config []*catalog.IndexDef) (QueryEval, error) {
	n := s.calls.Add(1)
	if s.hang {
		<-ctx.Done()
		return QueryEval{}, ctx.Err()
	}
	if n <= s.panicN {
		panic(fmt.Sprintf("scripted panic on call %d", n))
	}
	if n <= s.failN {
		err := s.baseErr
		if err == nil {
			err = fmt.Errorf("scripted failure %d", n)
		}
		return QueryEval{}, err
	}
	return QueryEval{CostNoIndexes: 100, Cost: 90}, nil
}

// fakeClock is a deterministic Now/Sleep pair: Sleep advances the
// clock instantly and records the requested durations.
type fakeClock struct {
	mu     sync.Mutex
	now    time.Time
	sleeps []time.Duration
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func (c *fakeClock) Sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	c.mu.Lock()
	c.sleeps = append(c.sleeps, d)
	c.now = c.now.Add(d)
	c.mu.Unlock()
	return nil
}

func (c *fakeClock) Sleeps() []time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]time.Duration(nil), c.sleeps...)
}

func resilientForTest(inner CostService, clk *fakeClock, mutate func(*ResilientOptions)) *ResilientService {
	o := ResilientOptions{
		MaxRetries:       3,
		RetryBase:        time.Millisecond,
		RetryMax:         16 * time.Millisecond,
		Seed:             42,
		FailureThreshold: 3,
		OpenFor:          time.Second,
		Now:              clk.Now,
		Sleep:            clk.Sleep,
	}
	if mutate != nil {
		mutate(&o)
	}
	return NewResilientService(inner, o)
}

func testQuery() *querylang.Query {
	return &querylang.Query{ID: "Q1", Collection: "c", Text: "/a/b"}
}

func TestResilientRetriesTransientFailures(t *testing.T) {
	inner := &scriptService{failN: 2}
	clk := &fakeClock{}
	svc := resilientForTest(inner, clk, nil)
	ev, err := svc.EvaluateQuery(context.Background(), testQuery(), nil)
	if err != nil {
		t.Fatalf("want success after retries, got %v", err)
	}
	if ev.Cost != 90 {
		t.Fatalf("inner result not passed through: %+v", ev)
	}
	if got := inner.calls.Load(); got != 3 {
		t.Fatalf("want 3 attempts (2 failures + success), got %d", got)
	}
	rs := svc.ResilienceCounters()
	if rs.Retries != 2 {
		t.Fatalf("want 2 retries counted, got %+v", rs)
	}
	if st := svc.State(); st != BreakerClosed {
		t.Fatalf("breaker should stay closed after recovery, got %v", st)
	}
	// Backoff jitter stays within [base/2, cap] and is deterministic.
	sleeps := clk.Sleeps()
	if len(sleeps) != 2 {
		t.Fatalf("want 2 backoff sleeps, got %v", sleeps)
	}
	for i, d := range sleeps {
		lo := (time.Millisecond << uint(i)) / 2
		hi := 16 * time.Millisecond
		if d < lo || d > hi {
			t.Fatalf("sleep %d = %v outside [%v, %v]", i, d, lo, hi)
		}
	}
	clk2 := &fakeClock{}
	svc2 := resilientForTest(&scriptService{failN: 2}, clk2, nil)
	if _, err := svc2.EvaluateQuery(context.Background(), testQuery(), nil); err != nil {
		t.Fatal(err)
	}
	if a, b := fmt.Sprint(sleeps), fmt.Sprint(clk2.Sleeps()); a != b {
		t.Fatalf("same seed must replay the same backoff schedule: %s vs %s", a, b)
	}
}

func TestResilientBreakerLifecycle(t *testing.T) {
	inner := &scriptService{failN: 1 << 30}
	clk := &fakeClock{}
	svc := resilientForTest(inner, clk, func(o *ResilientOptions) { o.MaxRetries = -1 })
	ctx := context.Background()

	// Two failures stay below the threshold and are plain errors.
	for i := 0; i < 2; i++ {
		if _, err := svc.EvaluateQuery(ctx, testQuery(), nil); err == nil || errors.Is(err, ErrCircuitOpen) {
			t.Fatalf("call %d: want plain failure, got %v", i, err)
		}
	}
	// The third failure trips the breaker, and the error already says so.
	_, err := svc.EvaluateQuery(ctx, testQuery(), nil)
	if !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("tripping failure must wrap ErrCircuitOpen, got %v", err)
	}
	if st := svc.State(); st != BreakerOpen {
		t.Fatalf("want open, got %v", st)
	}
	// While open, calls are rejected without touching the backend.
	before := inner.calls.Load()
	if _, err := svc.EvaluateQuery(ctx, testQuery(), nil); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("want fast rejection, got %v", err)
	}
	if inner.calls.Load() != before {
		t.Fatal("open breaker must not call the backend")
	}
	rs := svc.ResilienceCounters()
	if rs.BreakerTrips != 1 || rs.BreakerRejects == 0 {
		t.Fatalf("want 1 trip and >0 rejects, got %+v", rs)
	}

	// After the cool-down a probe is admitted; its failure re-opens.
	clk.Advance(2 * time.Second)
	if st := svc.State(); st != BreakerHalfOpen {
		t.Fatalf("want half-open after cool-down, got %v", st)
	}
	if _, err := svc.EvaluateQuery(ctx, testQuery(), nil); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("failed probe must re-open with ErrCircuitOpen, got %v", err)
	}
	if st := svc.State(); st != BreakerOpen {
		t.Fatalf("want re-opened, got %v", st)
	}

	// Backend heals; the next probe closes the breaker.
	inner.failN = 0
	inner.calls.Store(0)
	clk.Advance(2 * time.Second)
	if _, err := svc.EvaluateQuery(ctx, testQuery(), nil); err != nil {
		t.Fatalf("healed probe should succeed, got %v", err)
	}
	if st := svc.State(); st != BreakerClosed {
		t.Fatalf("want closed after successful probe, got %v", st)
	}
	if _, err := svc.EvaluateQuery(ctx, testQuery(), nil); err != nil {
		t.Fatalf("closed breaker should pass calls, got %v", err)
	}
}

func TestResilientCallTimeout(t *testing.T) {
	inner := &scriptService{hang: true}
	svc := NewResilientService(inner, ResilientOptions{
		CallTimeout: 5 * time.Millisecond,
		MaxRetries:  1,
		RetryBase:   time.Millisecond,
		RetryMax:    2 * time.Millisecond,
	})
	_, err := svc.EvaluateQuery(context.Background(), testQuery(), nil)
	if err == nil {
		t.Fatal("want timeout failure, got success")
	}
	rs := svc.ResilienceCounters()
	if rs.CallTimeouts != 2 {
		t.Fatalf("want both attempts counted as call timeouts, got %+v", rs)
	}
	if got := inner.calls.Load(); got != 2 {
		t.Fatalf("want 2 attempts, got %d", got)
	}
}

func TestResilientParentCancellationIsNotABackendFailure(t *testing.T) {
	inner := &scriptService{hang: true}
	clk := &fakeClock{}
	svc := resilientForTest(inner, clk, func(o *ResilientOptions) { o.FailureThreshold = 1 })
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	_, err := svc.EvaluateQuery(ctx, testQuery(), nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want the caller's cancellation back, got %v", err)
	}
	if st := svc.State(); st != BreakerClosed {
		t.Fatalf("caller cancellation must not trip the breaker, got %v", st)
	}
	rs := svc.ResilienceCounters()
	if rs.Retries != 0 || rs.BreakerTrips != 0 {
		t.Fatalf("caller cancellation must not retry or trip, got %+v", rs)
	}
}

func TestResilientRecoversPanicsWithoutRetry(t *testing.T) {
	inner := &scriptService{panicN: 1 << 30}
	clk := &fakeClock{}
	svc := resilientForTest(inner, clk, nil)
	_, err := svc.EvaluateQuery(context.Background(), testQuery(), nil)
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("want PanicError, got %v", err)
	}
	if len(pe.Stack) == 0 {
		t.Fatal("PanicError must carry the recovery stack")
	}
	if got := inner.calls.Load(); got != 1 {
		t.Fatalf("panics must not be retried, got %d attempts", got)
	}
	if rs := svc.ResilienceCounters(); rs.PanicsRecovered != 1 {
		t.Fatalf("want 1 recovered panic, got %+v", rs)
	}
}

func TestResilientRelevancePassthrough(t *testing.T) {
	// An inner service without RelevanceService yields a nil predicate…
	plain := resilientForTest(&scriptService{}, &fakeClock{}, nil)
	if f := plain.RelevantFilter(testQuery()); f != nil {
		t.Fatal("want nil predicate for a non-relevance inner service")
	}
	// …and a relevance-aware inner service is delegated to.
	fs := &fakeRelevanceService{}
	rs := resilientForTest(fs, &fakeClock{}, nil)
	if f := rs.RelevantFilter(testQuery()); f == nil || !f(nil) {
		t.Fatal("want the inner service's predicate delegated through")
	}
}

type fakeRelevanceService struct{ scriptService }

func (f *fakeRelevanceService) RelevantFilter(q *querylang.Query) func(*catalog.IndexDef) bool {
	return func(*catalog.IndexDef) bool { return true }
}

// TestEngineMergesResilienceCounters checks the Engine surfaces the
// middleware's counters (and its own recovered panics) in Stats.
func TestEngineMergesResilienceCounters(t *testing.T) {
	inner := &scriptService{failN: 2}
	clk := &fakeClock{}
	svc := resilientForTest(inner, clk, nil)
	eng := NewEngine(svc, Options{Workers: 2})
	q := testQuery()
	if _, err := eng.EvaluateConfig(context.Background(), []*querylang.Query{q}, nil); err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.Resilience.Retries != 2 {
		t.Fatalf("engine stats must include service retries, got %+v", st.Resilience)
	}
	st2 := eng.Stats().Sub(st)
	if st2.Resilience.Retries != 0 {
		t.Fatalf("Sub must difference resilience counters, got %+v", st2.Resilience)
	}
}

// TestEngineRecoversBackendPanic checks a panicking CostService
// surfaces as a typed PanicError from the engine, not a dead process.
func TestEngineRecoversBackendPanic(t *testing.T) {
	inner := &scriptService{panicN: 1 << 30}
	eng := NewEngine(inner, Options{Workers: 2})
	_, err := eng.EvaluateConfig(context.Background(), []*querylang.Query{testQuery()}, nil)
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("want PanicError out of the engine, got %v", err)
	}
	if st := eng.Stats(); st.Resilience.PanicsRecovered != 1 {
		t.Fatalf("want the engine to count its recovered panic, got %+v", st.Resilience)
	}
}
