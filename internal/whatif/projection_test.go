package whatif

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/catalog"
	"repro/internal/querylang"
)

// relService is a CostService with an explicit relevance table: def name
// -> relevant query IDs. Its cost honors the RelevanceService contract —
// only relevant definitions change a query's cost — so projection is
// exactly cost-preserving for it.
type relService struct {
	fakeService
	// relevant[qID][defName] marks the def relevant to the query.
	relevant map[string]map[string]bool
}

func (f *relService) EvaluateQuery(ctx context.Context, q *querylang.Query, config []*catalog.IndexDef) (QueryEval, error) {
	ev, err := f.fakeService.EvaluateQuery(ctx, q, config)
	if err != nil {
		return ev, err
	}
	// Recost counting only the relevant defs, so irrelevant ones are
	// genuinely inert (the contract projection relies on).
	base := ev.CostNoIndexes
	ev.Cost = base
	ev.UsedIndexes = nil
	for _, d := range config {
		if f.relevant[q.ID][d.Name] {
			ev.Cost -= 10
			ev.UsedIndexes = append(ev.UsedIndexes, d.Name)
		}
	}
	return ev, nil
}

func (f *relService) RelevantFilter(q *querylang.Query) func(*catalog.IndexDef) bool {
	rel := f.relevant[q.ID]
	return func(d *catalog.IndexDef) bool { return rel[d.Name] }
}

// TestProjectionSharesAtomsAcrossConfigs is the tentpole property:
// configurations that differ only in definitions irrelevant to a query
// share that query's atom, so growing a configuration only pays service
// calls for the queries the new definition is relevant to.
func TestProjectionSharesAtomsAcrossConfigs(t *testing.T) {
	svc := &relService{relevant: map[string]map[string]bool{
		"Q1": {"I1": true},
		"Q2": {"I2": true},
	}}
	e := NewEngine(svc, Options{Workers: 4})
	qs := testQueries(2)
	i1, i2 := testDef("I1", "c", "/a/b"), testDef("I2", "c", "/a/c")
	b := e.Bind(qs)
	ctx := context.Background()

	// {I1}: Q1 keeps I1 (full config, no drop), Q2 projects to {}.
	if _, err := b.EvaluateConfig(ctx, []*catalog.IndexDef{i1}); err != nil {
		t.Fatal(err)
	}
	// {I1,I2}: Q1 projects to {I1} — the atom already cached — and only
	// Q2's new {I2} atom costs a service call.
	second, err := b.EvaluateConfig(ctx, []*catalog.IndexDef{i1, i2})
	if err != nil {
		t.Fatal(err)
	}
	if !second.Atoms[0].Hit || second.Atoms[1].Hit {
		t.Errorf("atoms = %+v, want Q1 hit / Q2 miss", second.Atoms)
	}
	if second.Atoms[0].Relevant != 1 || second.Atoms[1].Relevant != 1 {
		t.Errorf("atoms = %+v, want 1 relevant def each", second.Atoms)
	}
	// {I2}: Q2's projection {I2} was cached by the {I1,I2} call; only
	// Q1's empty projection is new.
	third, err := b.EvaluateConfig(ctx, []*catalog.IndexDef{i2})
	if err != nil {
		t.Fatal(err)
	}
	if third.Atoms[0].Hit || !third.Atoms[1].Hit {
		t.Errorf("atoms = %+v, want Q1 miss / Q2 hit", third.Atoms)
	}
	st := e.Stats()
	if st.Misses != 4 || st.Hits != 2 {
		t.Errorf("stats = %+v, want 4 misses / 2 hits", st)
	}
	// Q1's hit joined a key its projection shortened ({I1,I2} -> {I1});
	// Q2's hit joined a full-config key ({I2} requested as-is).
	if st.ProjectedHits != 1 {
		t.Errorf("projected hits = %d, want 1", st.ProjectedHits)
	}
	if calls := svc.calls.Load(); calls != 4 {
		t.Errorf("service calls = %d, want 4", calls)
	}
	// RelevantDefs: one def for each of Q1{I1} (x2 lookups), Q2{I2}
	// (x2 lookups); zero for the empty projections.
	if st.RelevantDefs != 4 {
		t.Errorf("relevant defs = %d, want 4", st.RelevantDefs)
	}
	if got := st.MeanRelevant(); got != 4.0/6.0 {
		t.Errorf("mean relevant = %f, want %f", got, 4.0/6.0)
	}
}

// TestProjectionBatchDedup pins the in-batch dedup on projected keys:
// configurations whose per-query projections coincide are scheduled once
// per atom, no matter how they differ in irrelevant definitions.
func TestProjectionBatchDedup(t *testing.T) {
	svc := &relService{relevant: map[string]map[string]bool{
		"Q1": {"I1": true},
	}}
	e := NewEngine(svc, Options{Workers: 4})
	qs := testQueries(1)
	i1, i2, i3 := testDef("I1", "c", "/a/b"), testDef("I2", "c", "/a/c"), testDef("I3", "c", "/a/d")
	b := e.Bind(qs)

	configs := [][]*catalog.IndexDef{
		{i1},         // projects to {I1}, no drop
		{i1, i2},     // projects to {I1}
		{i3, i1, i2}, // projects to {I1}
	}
	got, err := b.EvaluateConfigBatch(context.Background(), configs)
	if err != nil {
		t.Fatal(err)
	}
	for ci := 1; ci < len(got); ci++ {
		if !reflect.DeepEqual(got[ci].Queries, got[0].Queries) {
			t.Errorf("config %d: projected duplicate differs from owner", ci)
		}
		if !got[ci].Atoms[0].Hit {
			t.Errorf("config %d: projected duplicate was not joined in-batch", ci)
		}
	}
	st := e.Stats()
	if st.Misses != 1 || st.Hits != 2 || st.ProjectedHits != 2 {
		t.Errorf("stats = %+v, want 1 miss / 2 hits / 2 projected hits", st)
	}
	if calls := svc.calls.Load(); calls != 1 {
		t.Errorf("service calls = %d, want 1 for three projected-identical configs", calls)
	}
}

// TestNoProjectionKeysFullConfig checks the measured-baseline mode:
// atoms are keyed by the whole configuration, so configurations
// differing only in irrelevant defs never share, while the costs remain
// identical to the projected engine's.
func TestNoProjectionKeysFullConfig(t *testing.T) {
	mk := func(noProj bool) (*relService, *Engine) {
		svc := &relService{relevant: map[string]map[string]bool{"Q1": {"I1": true}}}
		return svc, NewEngine(svc, Options{Workers: 4, NoProjection: noProj})
	}
	qs := testQueries(1)
	i1, i2 := testDef("I1", "c", "/a/b"), testDef("I2", "c", "/a/c")
	ctx := context.Background()

	baseSvc, base := mk(true)
	projSvc, proj := mk(false)
	for _, cfg := range [][]*catalog.IndexDef{{i1}, {i1, i2}} {
		want, err := base.EvaluateConfig(ctx, qs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := proj.EvaluateConfig(ctx, qs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Queries, want.Queries) {
			t.Errorf("config %v: projected engine differs from baseline", cfg)
		}
	}
	if st := base.Stats(); st.Misses != 2 || st.ProjectedHits != 0 {
		t.Errorf("baseline stats = %+v, want 2 misses / 0 projected hits", st)
	}
	if calls := baseSvc.calls.Load(); calls != 2 {
		t.Errorf("baseline service calls = %d, want 2", calls)
	}
	// The projected engine collapses both configs onto the {I1} atom.
	if calls := projSvc.calls.Load(); calls != 1 {
		t.Errorf("projected service calls = %d, want 1", calls)
	}
}

// TestRelevantCounts checks the eval-free projected-size probe.
func TestRelevantCounts(t *testing.T) {
	svc := &relService{relevant: map[string]map[string]bool{
		"Q1": {"I1": true, "I2": true},
		"Q2": {"I2": true},
		"Q3": {},
	}}
	e := NewEngine(svc, Options{})
	b := e.Bind(testQueries(3))
	cfg := []*catalog.IndexDef{
		testDef("I1", "c", "/a/b"),
		testDef("I2", "c", "/a/c"),
		testDef("I3", "other", "/a/d"), // wrong collection for every query
	}
	got := b.RelevantCounts(cfg)
	if want := []int{2, 1, 0}; !reflect.DeepEqual(got, want) {
		t.Errorf("relevant counts = %v, want %v", got, want)
	}
	if calls := svc.calls.Load(); calls != 0 {
		t.Errorf("RelevantCounts issued %d service calls", calls)
	}
}

func TestNewRelevanceStats(t *testing.T) {
	if got := NewRelevanceStats(nil); got != (RelevanceStats{}) {
		t.Errorf("empty input: %+v", got)
	}
	counts := []int{5, 1, 3, 3, 2, 8, 3, 4, 2, 1} // sorted: 1 1 2 2 3 3 3 4 5 8
	got := NewRelevanceStats(counts)
	want := RelevanceStats{Queries: 10, Min: 1, Median: 3, P95: 8, Max: 8, Mean: 3.2}
	if got != want {
		t.Errorf("stats = %+v, want %+v", got, want)
	}
	one := NewRelevanceStats([]int{7})
	if one.Min != 7 || one.Median != 7 || one.P95 != 7 || one.Max != 7 || one.Mean != 7 {
		t.Errorf("single-element stats = %+v", one)
	}
}
