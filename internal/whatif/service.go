// Package whatif is the what-if cost-evaluation service: the boundary
// between index-advisor search and the optimizer backend that prices
// hypothetical index configurations (the Evaluate Indexes EXPLAIN mode,
// paper §2.3).
//
// The package has two layers:
//
//   - CostService is the minimal pluggable interface: estimate one
//     query's cost under one hypothetical configuration. The in-process
//     implementation (OptimizerService) wraps internal/optimizer; a
//     future backend (a real DB2 EXPLAIN connection, a learned cost
//     model) only has to implement this interface.
//   - Engine turns a CostService into something a search can hammer:
//     per-configuration evaluations fan out across a bounded worker
//     pool, results are memoized behind a sharded cache with
//     singleflight-style deduplication, and hit/miss/evaluation
//     counters are exposed for benchmarking.
package whatif

import (
	"context"

	"repro/internal/catalog"
	"repro/internal/optimizer"
	"repro/internal/querylang"
)

// QueryEval is the outcome of costing one query under a hypothetical
// index configuration.
type QueryEval struct {
	// CostNoIndexes is the document-scan cost (the "original cost").
	CostNoIndexes float64
	// Cost is the estimated cost under the configuration.
	Cost float64
	// UsedIndexes names the configuration indexes the plan chose,
	// sorted.
	UsedIndexes []string
	// PlanDesc is a backend-specific plan rendering for display.
	PlanDesc string
}

// Benefit is the non-negative cost reduction of the configuration.
func (e QueryEval) Benefit() float64 {
	if b := e.CostNoIndexes - e.Cost; b > 0 {
		return b
	}
	return 0
}

// Explain renders the evaluation as the EVALUATE INDEXES screen (paper
// Figure 3), delegating to the optimizer's shared renderer.
func (e QueryEval) Explain(queryText string, config []*catalog.IndexDef) string {
	return optimizer.RenderEvaluation(queryText, config, e.CostNoIndexes, e.Cost, e.Benefit(), e.PlanDesc)
}

// CostService estimates query costs under hypothetical index
// configurations. Implementations must be safe for concurrent use: the
// Engine calls EvaluateQuery from many goroutines.
type CostService interface {
	// EvaluateQuery estimates the cost of q under config. The config
	// defs passed in are already restricted to q's collection.
	EvaluateQuery(ctx context.Context, q *querylang.Query, config []*catalog.IndexDef) (QueryEval, error)
}

// OptimizerService implements CostService over the in-process cost-based
// optimizer via its Evaluate Indexes EXPLAIN mode.
type OptimizerService struct {
	Opt *optimizer.Optimizer
	// VirtualOnly hides the catalog's real indexes so the evaluation
	// isolates the hypothetical configuration — the advisor's mode.
	VirtualOnly bool
}

// NewOptimizerService returns the advisor-mode (virtual-only) optimizer
// costing service.
func NewOptimizerService(opt *optimizer.Optimizer) *OptimizerService {
	return &OptimizerService{Opt: opt, VirtualOnly: true}
}

// EvaluateQuery implements CostService.
func (s *OptimizerService) EvaluateQuery(ctx context.Context, q *querylang.Query, config []*catalog.IndexDef) (QueryEval, error) {
	if err := ctx.Err(); err != nil {
		return QueryEval{}, err
	}
	res, err := s.Opt.EvaluateIndexes(q, config, s.VirtualOnly)
	if err != nil {
		return QueryEval{}, err
	}
	return QueryEval{
		CostNoIndexes: res.CostNoIndexes,
		Cost:          res.Cost,
		UsedIndexes:   res.UsedIndexes,
		PlanDesc:      res.Plan.Describe(),
	}, nil
}
