// Package whatif is the what-if cost-evaluation service: the boundary
// between index-advisor search and the optimizer backend that prices
// hypothetical index configurations (the Evaluate Indexes EXPLAIN mode,
// paper §2.3).
//
// The package has two layers:
//
//   - CostService is the minimal pluggable interface: estimate one
//     query's cost under one hypothetical configuration. The in-process
//     implementation (OptimizerService) wraps internal/optimizer; a
//     future backend (a real DB2 EXPLAIN connection, a learned cost
//     model) only has to implement this interface.
//   - Engine turns a CostService into something a search can hammer:
//     evaluations are decomposed into per-(query, projected sub-config)
//     atoms via relevance projection (only the definitions whose
//     patterns can serve a query are part of its cache key and its
//     optimizer call), the atoms fan out across a bounded worker pool,
//     results are memoized behind a sharded cache with
//     singleflight-style deduplication, and hit/miss/evaluation
//     counters are exposed for benchmarking.
package whatif

import (
	"context"

	"repro/internal/catalog"
	"repro/internal/optimizer"
	"repro/internal/querylang"
)

// QueryEval is the outcome of costing one query under a hypothetical
// index configuration.
type QueryEval struct {
	// CostNoIndexes is the document-scan cost (the "original cost").
	CostNoIndexes float64
	// Cost is the estimated cost under the configuration.
	Cost float64
	// UsedIndexes names the configuration indexes the plan chose,
	// sorted.
	UsedIndexes []string
	// PlanDesc is a backend-specific plan rendering for display.
	PlanDesc string
}

// Benefit is the non-negative cost reduction of the configuration.
func (e QueryEval) Benefit() float64 {
	if b := e.CostNoIndexes - e.Cost; b > 0 {
		return b
	}
	return 0
}

// Explain renders the evaluation as the EVALUATE INDEXES screen (paper
// Figure 3), delegating to the optimizer's shared renderer.
func (e QueryEval) Explain(queryText string, config []*catalog.IndexDef) string {
	return optimizer.RenderEvaluation(queryText, config, e.CostNoIndexes, e.Cost, e.Benefit(), e.PlanDesc)
}

// CostService estimates query costs under hypothetical index
// configurations. Implementations must be safe for concurrent use: the
// Engine calls EvaluateQuery from many goroutines.
type CostService interface {
	// EvaluateQuery estimates the cost of q under config. The config
	// defs passed in are already restricted to q's collection — and,
	// when the service also implements RelevanceService, to the defs
	// its own RelevantFilter accepted for q, so the cost must not
	// depend on definitions the filter rejects.
	EvaluateQuery(ctx context.Context, q *querylang.Query, config []*catalog.IndexDef) (QueryEval, error)
}

// RelevanceService is the optional CostService extension behind the
// engine's relevance projection. RelevantFilter returns a predicate
// reporting whether an index definition can influence q's cost under
// this service — an over-approximation is fine (a kept-but-useless def
// only costs cache sharing), but the predicate must never reject a
// definition that can change the result, or projection stops being
// cost-preserving. Services that do not implement it fall back to
// collection-only projection.
type RelevanceService interface {
	RelevantFilter(q *querylang.Query) func(*catalog.IndexDef) bool
}

// OptimizerService implements CostService over the in-process cost-based
// optimizer via its Evaluate Indexes EXPLAIN mode.
type OptimizerService struct {
	Opt *optimizer.Optimizer
	// VirtualOnly hides the catalog's real indexes so the evaluation
	// isolates the hypothetical configuration — the advisor's mode.
	VirtualOnly bool
}

// NewOptimizerService returns the advisor-mode (virtual-only) optimizer
// costing service.
func NewOptimizerService(opt *optimizer.Optimizer) *OptimizerService {
	return &OptimizerService{Opt: opt, VirtualOnly: true}
}

// RelevantFilter implements RelevanceService: an index definition is
// relevant to q iff the optimizer's own index-matching rule
// (type match + pattern containment) can apply it to one of q's legs.
func (s *OptimizerService) RelevantFilter(q *querylang.Query) func(*catalog.IndexDef) bool {
	return optimizer.RelevantFilter(q)
}

// EvaluateQuery implements CostService.
func (s *OptimizerService) EvaluateQuery(ctx context.Context, q *querylang.Query, config []*catalog.IndexDef) (QueryEval, error) {
	if err := ctx.Err(); err != nil {
		return QueryEval{}, err
	}
	res, err := s.Opt.EvaluateIndexes(q, config, s.VirtualOnly)
	if err != nil {
		return QueryEval{}, err
	}
	return QueryEval{
		CostNoIndexes: res.CostNoIndexes,
		Cost:          res.Cost,
		UsedIndexes:   res.UsedIndexes,
		PlanDesc:      res.Plan.Describe(),
	}, nil
}
