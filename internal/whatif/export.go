package whatif

import "sort"

// CachedAtom is one memoized cache entry in exportable form: the
// engine's (query fingerprint, projected sub-config) key and the
// evaluation cached under it. It is the unit the snapshot layer
// persists so a restarted process can warm-start the cache.
type CachedAtom struct {
	Key string
	Val QueryEval
}

// ExportAtoms returns every completed cached atom whose key keep
// accepts (nil keeps all), sorted by key so exports are deterministic.
// In-flight and failed entries are skipped. The returned QueryEval
// contents are shared with the cache and must not be mutated.
func (e *Engine) ExportAtoms(keep func(key string) bool) []CachedAtom {
	var out []CachedAtom
	for _, sh := range e.shards {
		sh.mu.Lock()
		for k, ent := range sh.m {
			select {
			case <-ent.ready:
				if ent.err == nil && (keep == nil || keep(k)) {
					out = append(out, CachedAtom{Key: k, Val: ent.val})
				}
			default:
				// Still computing; a snapshot only carries settled state.
			}
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// ImportAtoms pre-populates the cache with previously exported atoms,
// skipping keys already present (live entries always win over restored
// ones), and returns how many were installed. Imported entries are
// complete immediately and count as hits on first use; the shard cap
// applies as usual, evicting the oldest completed entries when a shard
// overflows.
func (e *Engine) ImportAtoms(atoms []CachedAtom) int {
	n := 0
	for _, a := range atoms {
		sh := e.shard(a.Key)
		sh.mu.Lock()
		if _, ok := sh.m[a.Key]; !ok {
			ent := &entry{ready: make(chan struct{}), val: a.Val}
			close(ent.ready)
			sh.insert(a.Key, ent, e.maxPerShard)
			n++
		}
		sh.mu.Unlock()
	}
	return n
}

// KeyPrefixes returns the bound queries' atom-key prefixes (fingerprint
// plus separator, deduplicated). Every cache key of an evaluation over
// this Bound starts with one of them — the filter a session snapshot
// uses to export only its own atoms from the shared engine cache.
func (b *Bound) KeyPrefixes() []string {
	seen := make(map[string]bool, len(b.atoms))
	out := make([]string, 0, len(b.atoms))
	for i := range b.atoms {
		if p := b.atoms[i].prefix; !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}
