package whatif

import "sort"

// BenefitEntry is one (query, candidate) cell of a BenefitMatrix: the
// standalone weighted benefit the candidate delivers on the query.
type BenefitEntry struct {
	// Query is the workload query index.
	Query int32
	// Benefit is weight * (cost without indexes - cost with only this
	// candidate), non-negative.
	Benefit float64
}

// BenefitMatrix holds standalone per-(query, candidate) benefit
// estimates: row i lists, sorted by query index, the queries candidate
// i improves when installed alone. It is the decomposed benefit model
// a CoPhy-style LP search strategy optimizes over: per-query benefits
// in Rows, plus the modular per-candidate terms (Private benefit and
// Update maintenance cost) that make net benefits computable without
// further what-if calls. Rows are aligned with whatever candidate
// order the producer documents (search.Space.Benefits aligns with
// Space.Candidates).
type BenefitMatrix struct {
	// NumQueries is the workload query count (the column space).
	NumQueries int
	// Rows is one sparse row per candidate.
	Rows [][]BenefitEntry
	// Private is an optional per-candidate query-independent benefit
	// (synthetic benefit models use it); nil or zero for engine-built
	// matrices.
	Private []float64
	// Update is the optional per-candidate modular maintenance cost
	// (weighted update cost of installing the candidate alone).
	// Producers that know it fill it — the update cost is modular in
	// every shipped cost model, so consumers may treat nil as zero and
	// lean on what-if repair for anything the matrix cannot see.
	Update []float64
}

// Entry returns the (candidate, query) benefit, 0 when absent.
func (m *BenefitMatrix) Entry(ci int, query int32) float64 {
	row := m.Rows[ci]
	i := sort.Search(len(row), func(i int) bool { return row[i].Query >= query })
	if i < len(row) && row[i].Query == query {
		return row[i].Benefit
	}
	return 0
}

// StandaloneBenefit is candidate ci's total standalone query benefit:
// its row sum plus its private benefit.
func (m *BenefitMatrix) StandaloneBenefit(ci int) float64 {
	total := 0.0
	for _, e := range m.Rows[ci] {
		total += e.Benefit
	}
	if m.Private != nil {
		total += m.Private[ci]
	}
	return total
}

// UpdateCost is candidate ci's modular maintenance cost, 0 when the
// producer did not fill Update.
func (m *BenefitMatrix) UpdateCost(ci int) float64 {
	if m.Update == nil {
		return 0
	}
	return m.Update[ci]
}

// PrivateBenefit is candidate ci's query-independent benefit, 0 when
// the producer did not fill Private.
func (m *BenefitMatrix) PrivateBenefit(ci int) float64 {
	if m.Private == nil {
		return 0
	}
	return m.Private[ci]
}

// NonZero counts the populated cells across all rows.
func (m *BenefitMatrix) NonZero() int {
	n := 0
	for _, row := range m.Rows {
		n += len(row)
	}
	return n
}

// RelevanceStats summarizes the per-query relevant-candidate counts of
// a workload against a configuration or candidate set: how many index
// definitions can serve each query at all. The distribution is what
// makes relevance projection pay — the smaller the typical relevance
// set next to the full candidate count, the fewer CostService calls a
// search round costs.
type RelevanceStats struct {
	// Queries is the workload query count the histogram is over.
	Queries int     `json:"queries"`
	Min     int     `json:"min"`
	Median  int     `json:"median"`
	P95     int     `json:"p95"`
	Max     int     `json:"max"`
	Mean    float64 `json:"mean"`
}

// NewRelevanceStats summarizes per-query relevant-definition counts
// (order irrelevant). The zero value is returned for an empty input.
func NewRelevanceStats(counts []int) RelevanceStats {
	if len(counts) == 0 {
		return RelevanceStats{}
	}
	sorted := append([]int(nil), counts...)
	sort.Ints(sorted)
	total := 0
	for _, c := range sorted {
		total += c
	}
	// Nearest-rank percentiles: index ceil(p*n)-1.
	rank := func(p float64) int {
		i := int(p*float64(len(sorted))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(sorted) {
			i = len(sorted) - 1
		}
		return sorted[i]
	}
	return RelevanceStats{
		Queries: len(sorted),
		Min:     sorted[0],
		Median:  rank(0.50),
		P95:     rank(0.95),
		Max:     sorted[len(sorted)-1],
		Mean:    float64(total) / float64(len(sorted)),
	}
}
