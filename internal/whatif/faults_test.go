package whatif

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/querylang"
)

func TestFaultScheduleDeterminism(t *testing.T) {
	run := func() (errs []int64, ev QueryEval) {
		svc := NewFaultService(&scriptService{}, FaultSchedule{Seed: 7, ErrorRate: 0.3})
		for i := 0; i < 50; i++ {
			e, err := svc.EvaluateQuery(context.Background(), testQuery(), nil)
			if err != nil {
				if !errors.Is(err, ErrInjected) {
					t.Fatalf("want ErrInjected, got %v", err)
				}
				errs = append(errs, svc.Calls())
				continue
			}
			ev = e
		}
		return errs, ev
	}
	errs1, ev := run()
	errs2, _ := run()
	if len(errs1) == 0 || len(errs1) == 50 {
		t.Fatalf("30%% error rate over 50 calls should fail some and pass some, got %d failures", len(errs1))
	}
	if a, b := fmt.Sprint(errs1), fmt.Sprint(errs2); a != b {
		t.Fatalf("same seed must fail the same calls: %s vs %s", a, b)
	}
	if ev.Cost != 90 {
		t.Fatalf("clean calls must pass the inner result through, got %+v", ev)
	}
}

func TestFaultPanicFailAfterAndStuck(t *testing.T) {
	svc := NewFaultService(&scriptService{}, FaultSchedule{Seed: 1, PanicOn: 2, FailAfter: 3})
	ctx := context.Background()
	if _, err := svc.EvaluateQuery(ctx, testQuery(), nil); err != nil {
		t.Fatalf("call 1 should be clean, got %v", err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("call 2 must panic")
			}
		}()
		svc.EvaluateQuery(ctx, testQuery(), nil)
	}()
	if _, err := svc.EvaluateQuery(ctx, testQuery(), nil); err != nil {
		t.Fatalf("call 3 should be clean, got %v", err)
	}
	if _, err := svc.EvaluateQuery(ctx, testQuery(), nil); !errors.Is(err, ErrInjected) {
		t.Fatalf("call 4 is past failafter, want ErrInjected, got %v", err)
	}

	// A stuck call blocks until its context dies.
	stuck := NewFaultService(&scriptService{}, FaultSchedule{Seed: 1, StuckRate: 1})
	sctx, cancel := context.WithTimeout(ctx, 5*time.Millisecond)
	defer cancel()
	if _, err := stuck.EvaluateQuery(sctx, testQuery(), nil); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("stuck call must return the context error, got %v", err)
	}
}

func TestFaultSetScheduleSwapsAtomically(t *testing.T) {
	svc := NewFaultService(&scriptService{}, FaultSchedule{Seed: 1, ErrorRate: 1})
	if _, err := svc.EvaluateQuery(context.Background(), testQuery(), nil); !errors.Is(err, ErrInjected) {
		t.Fatalf("want injected failure, got %v", err)
	}
	svc.SetSchedule(FaultSchedule{Seed: 1})
	if _, err := svc.EvaluateQuery(context.Background(), testQuery(), nil); err != nil {
		t.Fatalf("faults disabled, want success, got %v", err)
	}
	if svc.Injected() != 1 {
		t.Fatalf("want exactly 1 injected fault, got %d", svc.Injected())
	}
}

func TestParseFaultSpecRoundTrip(t *testing.T) {
	spec := "seed=7,error=0.1,latency=0.05:3ms,stuck=0.01,panic=25,failafter=200"
	f, err := ParseFaultSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	want := FaultSchedule{Seed: 7, ErrorRate: 0.1, LatencyRate: 0.05, Latency: 3 * time.Millisecond,
		StuckRate: 0.01, PanicOn: 25, FailAfter: 200}
	if f != want {
		t.Fatalf("parsed %+v, want %+v", f, want)
	}
	back, err := ParseFaultSpec(f.String())
	if err != nil || back != f {
		t.Fatalf("String/Parse round trip drifted: %+v vs %+v (%v)", back, f, err)
	}
	for _, bad := range []string{"", "error=2", "latency=0.1", "panic=0", "bogus=1", "error"} {
		if _, err := ParseFaultSpec(bad); err == nil {
			t.Errorf("spec %q should be rejected", bad)
		}
	}
}

// TestFaultUnderResilientUnderEngine is the composition the chaos and
// soak tests rely on: Engine → ResilientService → FaultService →
// backend. Retries absorb the transient faults below the engine, so
// the engine sees only clean results — and the relevance predicate
// still flows through both wrappers.
func TestFaultUnderResilientUnderEngine(t *testing.T) {
	faults := NewFaultService(&fakeRelevanceService{}, FaultSchedule{Seed: 3, ErrorRate: 0.3})
	clk := &fakeClock{}
	res := resilientForTest(faults, clk, func(o *ResilientOptions) { o.MaxRetries = 10 })
	eng := NewEngine(res, Options{Workers: 4})
	var queries []*querylang.Query
	for i := 0; i < 20; i++ {
		queries = append(queries, &querylang.Query{ID: fmt.Sprintf("Q%d", i), Collection: "c", Text: fmt.Sprintf("/a/b%d", i)})
	}
	ev, err := eng.EvaluateConfig(context.Background(), queries, nil)
	if err != nil {
		t.Fatalf("retries should absorb 30%% transient faults, got %v", err)
	}
	if len(ev.Queries) != 20 || ev.Queries[0].Cost != 90 {
		t.Fatalf("unexpected results: %+v", ev.Queries[:1])
	}
	st := eng.Stats()
	if st.Resilience.Retries == 0 {
		t.Fatal("expected some retries under 30% faults")
	}
	if faults.Injected() == 0 {
		t.Fatal("expected injected faults")
	}
}
