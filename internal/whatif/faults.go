package whatif

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/catalog"
	"repro/internal/querylang"
)

// ErrInjected is the error a FaultService returns for an injected
// failure (transient error or fail-after outage). Tests and the soak
// harness match it with errors.Is to distinguish injected faults from
// real ones.
var ErrInjected = errors.New("whatif: injected fault")

// FaultSchedule describes a deterministic fault workload. Every
// decision is a pure function of (Seed, call number), so the same
// schedule replays the exact same faults on the exact same calls —
// retries land on fresh call numbers and usually succeed, which is
// what makes resilient-vs-clean recommendation comparisons meaningful.
type FaultSchedule struct {
	// Seed drives the per-call fault decisions.
	Seed uint64 `json:"seed"`
	// ErrorRate is the probability a call fails with ErrInjected.
	ErrorRate float64 `json:"errorRate,omitempty"`
	// LatencyRate is the probability a call sleeps Latency first.
	LatencyRate float64 `json:"latencyRate,omitempty"`
	// Latency is the injected delay for latency-spike calls.
	Latency time.Duration `json:"latency,omitempty"`
	// StuckRate is the probability a call blocks until its context is
	// cancelled (exercises the per-call timeout).
	StuckRate float64 `json:"stuckRate,omitempty"`
	// PanicOn makes exactly that 1-based call number panic; 0 = never.
	PanicOn int64 `json:"panicOn,omitempty"`
	// FailAfter makes every call after that 1-based number fail with
	// ErrInjected — a hard outage; 0 = never.
	FailAfter int64 `json:"failAfter,omitempty"`
}

// String renders the schedule in ParseFaultSpec syntax.
func (f FaultSchedule) String() string {
	parts := []string{fmt.Sprintf("seed=%d", f.Seed)}
	if f.ErrorRate > 0 {
		parts = append(parts, fmt.Sprintf("error=%g", f.ErrorRate))
	}
	if f.LatencyRate > 0 || f.Latency > 0 {
		parts = append(parts, fmt.Sprintf("latency=%g:%s", f.LatencyRate, f.Latency))
	}
	if f.StuckRate > 0 {
		parts = append(parts, fmt.Sprintf("stuck=%g", f.StuckRate))
	}
	if f.PanicOn > 0 {
		parts = append(parts, fmt.Sprintf("panic=%d", f.PanicOn))
	}
	if f.FailAfter > 0 {
		parts = append(parts, fmt.Sprintf("failafter=%d", f.FailAfter))
	}
	return strings.Join(parts, ",")
}

// ParseFaultSpec parses a comma-separated fault schedule, e.g.
//
//	seed=7,error=0.1,latency=0.05:3ms,stuck=0.01,panic=25,failafter=200
//
// Keys: seed=<uint>, error=<rate>, latency=<rate>:<duration>,
// stuck=<rate>, panic=<call#>, failafter=<call#>. Rates are in [0,1].
func ParseFaultSpec(spec string) (FaultSchedule, error) {
	var f FaultSchedule
	if strings.TrimSpace(spec) == "" {
		return f, fmt.Errorf("whatif: empty fault spec")
	}
	rate := func(key, val string) (float64, error) {
		r, err := strconv.ParseFloat(val, 64)
		if err != nil || r < 0 || r > 1 {
			return 0, fmt.Errorf("whatif: fault spec %s=%q: want a rate in [0,1]", key, val)
		}
		return r, nil
	}
	callNo := func(key, val string) (int64, error) {
		n, err := strconv.ParseInt(val, 10, 64)
		if err != nil || n < 1 {
			return 0, fmt.Errorf("whatif: fault spec %s=%q: want a positive call number", key, val)
		}
		return n, nil
	}
	for _, item := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(item), "=")
		if !ok {
			return f, fmt.Errorf("whatif: fault spec item %q: want key=value", item)
		}
		var err error
		switch key {
		case "seed":
			f.Seed, err = strconv.ParseUint(val, 10, 64)
			if err != nil {
				return f, fmt.Errorf("whatif: fault spec seed=%q: %v", val, err)
			}
		case "error":
			if f.ErrorRate, err = rate(key, val); err != nil {
				return f, err
			}
		case "latency":
			rstr, dstr, ok := strings.Cut(val, ":")
			if !ok {
				return f, fmt.Errorf("whatif: fault spec latency=%q: want <rate>:<duration>", val)
			}
			if f.LatencyRate, err = rate(key, rstr); err != nil {
				return f, err
			}
			if f.Latency, err = time.ParseDuration(dstr); err != nil || f.Latency < 0 {
				return f, fmt.Errorf("whatif: fault spec latency=%q: bad duration %q", val, dstr)
			}
		case "stuck":
			if f.StuckRate, err = rate(key, val); err != nil {
				return f, err
			}
		case "panic":
			if f.PanicOn, err = callNo(key, val); err != nil {
				return f, err
			}
		case "failafter":
			if f.FailAfter, err = callNo(key, val); err != nil {
				return f, err
			}
		default:
			keys := []string{"seed", "error", "latency", "stuck", "panic", "failafter"}
			sort.Strings(keys)
			return f, fmt.Errorf("whatif: fault spec key %q: want one of %s", key, strings.Join(keys, ", "))
		}
	}
	return f, nil
}

// FaultService is a CostService that injects scheduled faults in front
// of a real backend: transient errors, latency spikes, stuck calls
// (block until context cancellation), one targeted panic, and a hard
// fail-after outage. Successful calls pass the inner result through
// unchanged, and relevance projection delegates to the inner service,
// so a fault-free schedule is behavior-identical to the bare backend.
// Safe for concurrent use; the schedule can be swapped atomically
// mid-run (SetSchedule) to phase a test through clean → chaos →
// outage → recovery.
type FaultService struct {
	inner CostService
	rel   RelevanceService // inner as RelevanceService, or nil
	sched atomic.Pointer[FaultSchedule]
	calls atomic.Int64
	// injected counts faults actually delivered (errors, spikes,
	// stucks, panics), for test assertions that chaos really happened.
	injected atomic.Int64
}

// NewFaultService wraps inner with the fault schedule.
func NewFaultService(inner CostService, sched FaultSchedule) *FaultService {
	s := &FaultService{inner: inner}
	s.sched.Store(&sched)
	if rs, ok := inner.(RelevanceService); ok {
		s.rel = rs
	}
	return s
}

// SetSchedule atomically replaces the fault schedule; in-flight calls
// finish under the schedule they started with. The call counter keeps
// running, so FailAfter/PanicOn are absolute call numbers.
func (s *FaultService) SetSchedule(sched FaultSchedule) { s.sched.Store(&sched) }

// Schedule returns the current schedule.
func (s *FaultService) Schedule() FaultSchedule { return *s.sched.Load() }

// Calls returns how many EvaluateQuery calls arrived so far.
func (s *FaultService) Calls() int64 { return s.calls.Load() }

// Injected returns how many faults were actually delivered.
func (s *FaultService) Injected() int64 { return s.injected.Load() }

// RelevantFilter implements RelevanceService by delegating to the
// inner service (nil predicate when it has none), keeping the Engine's
// relevance projection intact under fault injection.
func (s *FaultService) RelevantFilter(q *querylang.Query) func(*catalog.IndexDef) bool {
	if s.rel == nil {
		return nil
	}
	return s.rel.RelevantFilter(q)
}

// roll returns a deterministic uniform [0,1) draw for (call n, salt).
func (f *FaultSchedule) roll(n int64, salt uint64) float64 {
	u := splitmix64(f.Seed ^ (uint64(n)*0x9e3779b97f4a7c15 + salt))
	return float64(u>>11) / float64(1<<53)
}

// EvaluateQuery implements CostService, injecting the scheduled fault
// for this call number (if any) before delegating.
func (s *FaultService) EvaluateQuery(ctx context.Context, q *querylang.Query, config []*catalog.IndexDef) (QueryEval, error) {
	n := s.calls.Add(1)
	f := s.sched.Load()
	if f.PanicOn > 0 && n == f.PanicOn {
		s.injected.Add(1)
		panic(fmt.Sprintf("whatif: injected panic on call %d (schedule %s)", n, f))
	}
	if f.FailAfter > 0 && n > f.FailAfter {
		s.injected.Add(1)
		return QueryEval{}, fmt.Errorf("%w: outage (call %d > failafter %d)", ErrInjected, n, f.FailAfter)
	}
	if f.ErrorRate > 0 && f.roll(n, 1) < f.ErrorRate {
		s.injected.Add(1)
		return QueryEval{}, fmt.Errorf("%w: transient error on call %d", ErrInjected, n)
	}
	if f.StuckRate > 0 && f.roll(n, 2) < f.StuckRate {
		s.injected.Add(1)
		<-ctx.Done()
		return QueryEval{}, ctx.Err()
	}
	if f.LatencyRate > 0 && f.Latency > 0 && f.roll(n, 3) < f.LatencyRate {
		s.injected.Add(1)
		if err := sleepCtx(ctx, f.Latency); err != nil {
			return QueryEval{}, err
		}
	}
	return s.inner.EvaluateQuery(ctx, q, config)
}
