package whatif

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/catalog"
	"repro/internal/querylang"
)

// Options configure an Engine.
type Options struct {
	// Workers bounds concurrent per-query cost evaluations across all
	// callers of the engine; 0 means GOMAXPROCS.
	Workers int
	// Shards is the cache shard count (rounded up to a power of two);
	// 0 means 16.
	Shards int
	// MaxEntries caps the number of memoized configuration evaluations
	// (approximately, split across shards); 0 means unlimited.
	MaxEntries int
}

// Stats are the engine's monotonic counters. A cache "hit" includes
// joining an in-flight evaluation of the same configuration (the
// singleflight path); "evaluations" counts per-query CostService calls.
type Stats struct {
	Hits        int64 `json:"hits"`
	Misses      int64 `json:"misses"`
	Evaluations int64 `json:"evaluations"`
}

// HitRate is hits / (hits + misses), or 0 when nothing was looked up.
func (s Stats) HitRate() float64 {
	if t := s.Hits + s.Misses; t > 0 {
		return float64(s.Hits) / float64(t)
	}
	return 0
}

// Sub returns the counter deltas since an earlier snapshot.
func (s Stats) Sub(earlier Stats) Stats {
	return Stats{
		Hits:        s.Hits - earlier.Hits,
		Misses:      s.Misses - earlier.Misses,
		Evaluations: s.Evaluations - earlier.Evaluations,
	}
}

// ConfigEval is one memoized configuration evaluation: the cost of every
// query (in input order) under the configuration. Cached values are
// shared between callers and must not be mutated.
type ConfigEval struct {
	Queries []QueryEval
}

// entry is one cache slot; ready is closed once val/err are set, so
// concurrent requests for the same key wait instead of re-evaluating.
type entry struct {
	ready chan struct{}
	val   *ConfigEval
	err   error
}

// orderEntry is one FIFO slot of a shard's eviction queue. The entry
// pointer distinguishes a live slot from a stale one left behind by
// remove or by re-insertion of the same key (lazy deletion keeps both
// remove and eviction O(1) amortized).
type orderEntry struct {
	key string
	ent *entry
}

type cacheShard struct {
	mu    sync.Mutex
	m     map[string]*entry
	order []orderEntry // FIFO from head; slots before head are consumed
	head  int
}

// Engine is a concurrent, memoizing what-if evaluator over a
// CostService. It is safe for concurrent use.
type Engine struct {
	svc     CostService
	workers int
	sem     chan struct{} // global per-query evaluation slots

	shards      []*cacheShard
	shardMask   uint32
	maxPerShard int

	hits, misses, evals atomic.Int64
}

// NewEngine wraps the service in a concurrent memoizing engine.
func NewEngine(svc CostService, o Options) *Engine {
	workers := o.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	nShards := 16
	if o.Shards > 0 {
		nShards = 1
		for nShards < o.Shards {
			nShards <<= 1
		}
	}
	e := &Engine{
		svc:       svc,
		workers:   workers,
		sem:       make(chan struct{}, workers),
		shards:    make([]*cacheShard, nShards),
		shardMask: uint32(nShards - 1),
	}
	for i := range e.shards {
		e.shards[i] = &cacheShard{m: map[string]*entry{}}
	}
	if o.MaxEntries > 0 {
		e.maxPerShard = (o.MaxEntries + nShards - 1) / nShards
		if e.maxPerShard < 1 {
			e.maxPerShard = 1
		}
	}
	return e
}

// Workers returns the engine's evaluation parallelism.
func (e *Engine) Workers() int { return e.workers }

// Stats returns a snapshot of the engine counters.
func (e *Engine) Stats() Stats {
	return Stats{Hits: e.hits.Load(), Misses: e.misses.Load(), Evaluations: e.evals.Load()}
}

// ConfigKey is the canonical, order-insensitive cache key of a
// configuration. Every field is length- or terminator-delimited so that
// distinct definitions can never concatenate to the same key.
func ConfigKey(config []*catalog.IndexDef) string {
	parts := make([]string, len(config))
	for i, d := range config {
		parts[i] = fmt.Sprintf("%d:%s|%d:%s|%s|%s",
			len(d.Name), d.Name, len(d.Collection), d.Collection, d.Pattern.String(), d.Type.Short())
	}
	sort.Strings(parts)
	return strings.Join(parts, "\x1e")
}

// queriesKey fingerprints the query list so one engine can serve several
// workloads without cache cross-talk. The hashed serialization is
// length-prefixed, hence injective up to hash collisions.
func queriesKey(queries []*querylang.Query) string {
	h := fnv.New64a()
	for _, q := range queries {
		fmt.Fprintf(h, "%d:%s|%d:%s|%d:%s;", len(q.Collection), q.Collection, len(q.ID), q.ID, len(q.Text), q.Text)
	}
	return strconv.FormatUint(h.Sum64(), 16)
}

func (e *Engine) shard(key string) *cacheShard {
	h := fnv.New32a()
	h.Write([]byte(key))
	return e.shards[h.Sum32()&e.shardMask]
}

// EvaluateQuery costs one query under the configuration, uncached.
func (e *Engine) EvaluateQuery(ctx context.Context, q *querylang.Query, config []*catalog.IndexDef) (QueryEval, error) {
	select {
	case e.sem <- struct{}{}:
	case <-ctx.Done():
		return QueryEval{}, ctx.Err()
	}
	defer func() { <-e.sem }()
	e.evals.Add(1)
	return e.svc.EvaluateQuery(ctx, q, filterConfig(config, q.Collection))
}

// Bound is a what-if evaluation scope over a fixed query list: the
// workload fingerprint is computed once, so per-configuration lookups
// on the hot search path only canonicalize the configuration.
type Bound struct {
	eng     *Engine
	queries []*querylang.Query
	prefix  string
}

// Bind fixes the query list the engine evaluates configurations over.
func (e *Engine) Bind(queries []*querylang.Query) *Bound {
	return &Bound{eng: e, queries: queries, prefix: queriesKey(queries) + "\x1f"}
}

// EvaluateConfig costs every bound query under the configuration; see
// Engine.EvaluateConfig.
func (b *Bound) EvaluateConfig(ctx context.Context, config []*catalog.IndexDef) (*ConfigEval, error) {
	return b.eng.evaluateConfigKey(ctx, b.prefix+ConfigKey(config), b.queries, config)
}

// EvaluateConfigBatch costs every bound query under each configuration,
// as one unit: all cache keys are registered (or joined) in a single
// pass, and the missing (configuration, query) evaluations are drained
// by a fixed pool of workers pulling from one flat task list — one
// dispatch for the whole burst instead of per-configuration singleflight
// and goroutine fan-out. Results are in configs order; semantics match
// calling EvaluateConfig per configuration. Lazy-greedy re-evaluation
// bursts are the intended caller.
func (b *Bound) EvaluateConfigBatch(ctx context.Context, configs [][]*catalog.IndexDef) ([]*ConfigEval, error) {
	return b.eng.evaluateConfigBatch(ctx, b.prefix, b.queries, configs)
}

// EvaluateConfig costs every query under the configuration, memoized by
// (query list, configuration). Concurrent calls with the same key share
// one evaluation; distinct keys share the engine's worker pool. The
// returned value is cached and must not be mutated.
func (e *Engine) EvaluateConfig(ctx context.Context, queries []*querylang.Query, config []*catalog.IndexDef) (*ConfigEval, error) {
	return e.Bind(queries).EvaluateConfig(ctx, config)
}

func (e *Engine) evaluateConfigKey(ctx context.Context, key string, queries []*querylang.Query, config []*catalog.IndexDef) (*ConfigEval, error) {
	sh := e.shard(key)

	for {
		sh.mu.Lock()
		if ent, ok := sh.m[key]; ok {
			sh.mu.Unlock()
			select {
			case <-ent.ready:
				if ent.err != nil {
					// The owner may have failed on its *own* context,
					// which says nothing about ours — retry with our
					// live context (the dead entry is already
					// evicted). Any other failure is the evaluation's
					// own and is shared with every waiter; retrying
					// would re-run a failing evaluation once per
					// caller.
					if err := ctx.Err(); err != nil {
						return nil, err
					}
					if errors.Is(ent.err, context.Canceled) || errors.Is(ent.err, context.DeadlineExceeded) {
						continue
					}
					return nil, ent.err
				}
				// Count the hit only once a shared value actually
				// arrived, so error churn does not inflate the rate.
				e.hits.Add(1)
				return ent.val, nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		ent := &entry{ready: make(chan struct{})}
		sh.insert(key, ent, e.maxPerShard)
		sh.mu.Unlock()
		e.misses.Add(1)

		val, err := e.evaluate(ctx, queries, config)
		if err != nil {
			// Failed evaluations are not cached. Evict before waking
			// waiters so their retry cannot rejoin this dead entry.
			sh.mu.Lock()
			if sh.m[key] == ent {
				sh.remove(key)
			}
			sh.mu.Unlock()
			ent.err = err
			close(ent.ready)
			return nil, err
		}
		ent.val = val
		close(ent.ready)
		return val, nil
	}
}

// evaluate fans the per-query evaluations across the worker pool.
func (e *Engine) evaluate(ctx context.Context, queries []*querylang.Query, config []*catalog.IndexDef) (*ConfigEval, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	out := &ConfigEval{Queries: make([]QueryEval, len(queries))}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	setErr := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		cancel()
	}
	for i, q := range queries {
		wg.Add(1)
		go func(i int, q *querylang.Query) {
			defer wg.Done()
			select {
			case e.sem <- struct{}{}:
			case <-ctx.Done():
				setErr(ctx.Err())
				return
			}
			defer func() { <-e.sem }()
			if err := ctx.Err(); err != nil {
				setErr(err)
				return
			}
			e.evals.Add(1)
			ev, err := e.svc.EvaluateQuery(ctx, q, filterConfig(config, q.Collection))
			if err != nil {
				setErr(err)
				return
			}
			out.Queries[i] = ev
		}(i, q)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// batchOwned is one batch configuration this call owns the evaluation
// of: its singleflight entry plus the value under construction.
type batchOwned struct {
	idx     int // position in the caller's configs slice
	key     string
	ent     *entry
	val     *ConfigEval
	pending atomic.Int64
	err     error // first per-query failure, under the batch's error mutex
}

// evaluateConfigBatch is the batch form of evaluateConfigKey: one
// key-registration pass, then one flat (owned config × query) task list
// drained by a fixed worker pool. Each pool worker holds one engine
// semaphore slot for its lifetime, so the burst still respects the
// engine-wide evaluation budget while paying the per-query
// synchronization once per worker instead of once per query.
func (e *Engine) evaluateConfigBatch(ctx context.Context, prefix string, queries []*querylang.Query, configs [][]*catalog.IndexDef) ([]*ConfigEval, error) {
	out := make([]*ConfigEval, len(configs))
	type joined struct {
		idx int
		key string
		ent *entry
	}
	var own []*batchOwned
	var joins []joined
	for i, cfg := range configs {
		key := prefix + ConfigKey(cfg)
		sh := e.shard(key)
		sh.mu.Lock()
		if ent, ok := sh.m[key]; ok {
			sh.mu.Unlock()
			// Cached or in flight (possibly owned by this very batch, a
			// duplicate config): wait after the owned work completes.
			joins = append(joins, joined{idx: i, key: key, ent: ent})
			continue
		}
		ent := &entry{ready: make(chan struct{})}
		sh.insert(key, ent, e.maxPerShard)
		sh.mu.Unlock()
		e.misses.Add(1)
		o := &batchOwned{idx: i, key: key, ent: ent,
			val: &ConfigEval{Queries: make([]QueryEval, len(queries))}}
		o.pending.Store(int64(len(queries)))
		own = append(own, o)
	}

	// Drain the owned (configuration, query) pairs through a fixed
	// worker pool pulling an atomic cursor over one flat task list.
	var firstErr error
	if n := len(own) * len(queries); n > 0 {
		type task struct {
			o  *batchOwned
			qi int
		}
		tasks := make([]task, 0, n)
		for _, o := range own {
			for qi := range queries {
				tasks = append(tasks, task{o: o, qi: qi})
			}
		}
		workers := e.workers
		if workers > len(tasks) {
			workers = len(tasks)
		}
		bctx, cancel := context.WithCancel(ctx)
		var (
			next  atomic.Int64
			wg    sync.WaitGroup
			errMu sync.Mutex
		)
		fail := func(o *batchOwned, err error) {
			errMu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			if o != nil && o.err == nil {
				o.err = err
			}
			errMu.Unlock()
			cancel()
		}
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				select {
				case e.sem <- struct{}{}:
				case <-bctx.Done():
					fail(nil, bctx.Err())
					return
				}
				defer func() { <-e.sem }()
				for {
					i := next.Add(1) - 1
					if int(i) >= len(tasks) {
						return
					}
					if err := bctx.Err(); err != nil {
						fail(nil, err)
						return
					}
					t := tasks[i]
					q := queries[t.qi]
					e.evals.Add(1)
					ev, err := e.svc.EvaluateQuery(bctx, q, filterConfig(configs[t.o.idx], q.Collection))
					if err != nil {
						fail(t.o, err)
						return
					}
					t.o.val.Queries[t.qi] = ev
					t.o.pending.Add(-1)
				}
			}()
		}
		wg.Wait()
		cancel()
	}

	// Publish every owned entry exactly once before touching the joins:
	// completed values are cached for everyone, failed or cut-off ones
	// are evicted so waiters retry instead of rejoining a dead entry
	// (same contract as the single-configuration path).
	for _, o := range own {
		if o.err == nil && o.pending.Load() == 0 {
			o.ent.val = o.val
			close(o.ent.ready)
			out[o.idx] = o.val
			continue
		}
		err := o.err
		if err == nil {
			err = firstErr // cancelled before this config's tasks ran
		}
		if err == nil {
			err = context.Canceled
		}
		sh := e.shard(o.key)
		sh.mu.Lock()
		if sh.m[o.key] == o.ent {
			sh.remove(o.key)
		}
		sh.mu.Unlock()
		o.ent.err = err
		close(o.ent.ready)
	}
	if firstErr != nil {
		return nil, firstErr
	}

	for _, j := range joins {
		select {
		case <-j.ent.ready:
			if j.ent.err != nil {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				// Owner died on its own context; re-evaluate with ours
				// (the dead entry is already evicted).
				if errors.Is(j.ent.err, context.Canceled) || errors.Is(j.ent.err, context.DeadlineExceeded) {
					val, err := e.evaluateConfigKey(ctx, j.key, queries, configs[j.idx])
					if err != nil {
						return nil, err
					}
					out[j.idx] = val
					continue
				}
				return nil, j.ent.err
			}
			e.hits.Add(1)
			out[j.idx] = j.ent.val
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return out, nil
}

// filterConfig restricts the configuration to one collection's indexes
// (an optimizer ignores the others anyway; this keeps matching cheap).
func filterConfig(config []*catalog.IndexDef, coll string) []*catalog.IndexDef {
	n := 0
	for _, d := range config {
		if d.Collection == coll {
			n++
		}
	}
	if n == len(config) {
		return config
	}
	out := make([]*catalog.IndexDef, 0, n)
	for _, d := range config {
		if d.Collection == coll {
			out = append(out, d)
		}
	}
	return out
}

// insert adds the entry under key, evicting the oldest completed entry
// when the shard is full. In-flight entries are never evicted (the cap
// may be exceeded briefly while the oldest entries are still computing).
func (s *cacheShard) insert(key string, ent *entry, max int) {
	for max > 0 && len(s.m) >= max {
		if !s.evictOldest() {
			break // every live entry is still computing
		}
	}
	s.m[key] = ent
	s.order = append(s.order, orderEntry{key: key, ent: ent})
	// Compact consumed head space occasionally so the queue's memory
	// stays proportional to the live entry count.
	if s.head > 32 && s.head > len(s.order)/2 {
		s.order = append(s.order[:0:0], s.order[s.head:]...)
		s.head = 0
	}
}

// evictOldest drops the oldest live, completed entry and reports whether
// one was dropped. Stale head slots are consumed as they are passed;
// in-flight entries are never evicted, but entries behind an in-flight
// head are still eligible, so an overshoot caused by a slow evaluation
// at the head heals instead of persisting.
func (s *cacheShard) evictOldest() bool {
	for s.head < len(s.order) {
		oe := s.order[s.head]
		if cur, ok := s.m[oe.key]; !ok || cur != oe.ent {
			s.head++ // stale: removed, flushed, or re-inserted
			continue
		}
		break
	}
	for i := s.head; i < len(s.order); i++ {
		oe := s.order[i]
		if cur, ok := s.m[oe.key]; !ok || cur != oe.ent {
			continue
		}
		select {
		case <-oe.ent.ready:
			delete(s.m, oe.key)
			if i == s.head {
				s.head++
			}
			return true
		default:
			// Still computing; try the next oldest live entry.
		}
	}
	return false
}

// remove drops a key (failed evaluation); its queue slot goes stale and
// is skipped when the head reaches it.
func (s *cacheShard) remove(key string) {
	delete(s.m, key)
}

// Flush drops every cached configuration evaluation (counters are
// kept). Callers must flush after the underlying data or statistics
// change: cached costs are keyed by query text and index definition
// only, not by catalog version. In-flight evaluations are orphaned —
// already-joined waiters still receive their result, but it is not
// cached, and later requests re-evaluate against the new state.
func (e *Engine) Flush() {
	for _, sh := range e.shards {
		sh.mu.Lock()
		sh.m = map[string]*entry{}
		sh.order = nil
		sh.head = 0
		sh.mu.Unlock()
	}
}

// Len reports the number of cached configuration evaluations.
func (e *Engine) Len() int {
	n := 0
	for _, sh := range e.shards {
		sh.mu.Lock()
		n += len(sh.m)
		sh.mu.Unlock()
	}
	return n
}
