package whatif

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/catalog"
	"repro/internal/querylang"
)

// Options configure an Engine.
type Options struct {
	// Workers bounds concurrent per-query cost evaluations across all
	// callers of the engine; 0 means GOMAXPROCS.
	Workers int
	// Shards is the cache shard count (rounded up to a power of two);
	// 0 means 16.
	Shards int
	// MaxEntries caps the number of memoized per-(query, sub-config)
	// atoms (approximately, split across shards); 0 means unlimited.
	MaxEntries int
	// NoProjection disables relevance projection: atoms are keyed by
	// the full requested configuration (every definition, every
	// collection) instead of the query's projected sub-config, so each
	// distinct configuration re-costs every query — the pre-projection
	// engine, kept as the measured baseline and differential-test
	// reference. Costing itself is identical either way.
	NoProjection bool
}

// Stats are the engine's monotonic counters. A cache "hit" includes
// joining an in-flight evaluation of the same atom (the singleflight
// path); "evaluations" counts per-query CostService calls. Hits,
// misses, and the projection counters are per atom — one
// (query, projected sub-config) lookup each.
type Stats struct {
	Hits        int64 `json:"hits"`
	Misses      int64 `json:"misses"`
	Evaluations int64 `json:"evaluations"`
	// ProjectedHits counts hits on atoms whose projected sub-config
	// dropped at least one definition of the requested configuration —
	// sharing that whole-configuration keying could never have found.
	ProjectedHits int64 `json:"projectedHits"`
	// RelevantDefs sums projected sub-config sizes over every atom
	// lookup; RelevantDefs / (Hits + Misses) is the mean relevance-set
	// size the engine actually costed against.
	RelevantDefs int64 `json:"relevantDefs"`
	// Resilience aggregates the middleware's retry/breaker/timeout/
	// panic counters (when the engine's CostService keeps them) plus
	// panics the engine itself recovered; zero-valued when the service
	// stack has no resilience layer and nothing panicked.
	Resilience ResilienceStats `json:"resilience,omitzero"`
}

// HitRate is hits / (hits + misses), or 0 when nothing was looked up.
func (s Stats) HitRate() float64 {
	if t := s.Hits + s.Misses; t > 0 {
		return float64(s.Hits) / float64(t)
	}
	return 0
}

// MeanRelevant is the mean projected sub-config size per atom lookup,
// or 0 when nothing was looked up.
func (s Stats) MeanRelevant() float64 {
	if t := s.Hits + s.Misses; t > 0 {
		return float64(s.RelevantDefs) / float64(t)
	}
	return 0
}

// Sub returns the counter deltas since an earlier snapshot.
func (s Stats) Sub(earlier Stats) Stats {
	return Stats{
		Hits:          s.Hits - earlier.Hits,
		Misses:        s.Misses - earlier.Misses,
		Evaluations:   s.Evaluations - earlier.Evaluations,
		ProjectedHits: s.ProjectedHits - earlier.ProjectedHits,
		RelevantDefs:  s.RelevantDefs - earlier.RelevantDefs,
		Resilience: ResilienceStats{
			Retries:         s.Resilience.Retries - earlier.Resilience.Retries,
			BreakerTrips:    s.Resilience.BreakerTrips - earlier.Resilience.BreakerTrips,
			BreakerRejects:  s.Resilience.BreakerRejects - earlier.Resilience.BreakerRejects,
			CallTimeouts:    s.Resilience.CallTimeouts - earlier.Resilience.CallTimeouts,
			PanicsRecovered: s.Resilience.PanicsRecovered - earlier.Resilience.PanicsRecovered,
		},
	}
}

// AtomInfo is the assembly metadata of one query's atom within a
// ConfigEval: how many definitions survived relevance projection for
// the query, and whether the atom was served from the cache (including
// joining an in-flight evaluation) instead of a CostService call this
// engine call paid for.
type AtomInfo struct {
	Relevant int
	Hit      bool
}

// ConfigEval is one configuration evaluation: the cost of every query
// (in input order) under the configuration, reassembled from
// per-(query, projected sub-config) atoms. Atoms is parallel to
// Queries and describes the assembly of this particular call; the
// QueryEval contents are shared with the cache and must not be mutated.
type ConfigEval struct {
	Queries []QueryEval
	Atoms   []AtomInfo
}

// entry is one cache slot; ready is closed once val/err are set, so
// concurrent requests for the same atom wait instead of re-evaluating.
type entry struct {
	ready chan struct{}
	val   QueryEval
	err   error
}

// orderEntry is one FIFO slot of a shard's eviction queue. The entry
// pointer distinguishes a live slot from a stale one left behind by
// remove or by re-insertion of the same key (lazy deletion keeps both
// remove and eviction O(1) amortized).
type orderEntry struct {
	key string
	ent *entry
}

type cacheShard struct {
	mu    sync.Mutex
	m     map[string]*entry
	order []orderEntry // FIFO from head; slots before head are consumed
	head  int
}

// Engine is a concurrent, memoizing what-if evaluator over a
// CostService. It decomposes every configuration evaluation into
// per-(query, projected sub-config) atoms: only the definitions whose
// patterns can serve a query (per the service's RelevantFilter, an
// over-approximation via the containment kernel) are part of the
// query's cache key and its CostService call, so evaluating base+{c}
// after base only pays optimizer calls for the queries c is relevant
// to. It is safe for concurrent use.
type Engine struct {
	svc          CostService
	rel          RelevanceService // nil: collection-only projection
	noProjection bool
	workers      int
	sem          chan struct{} // global per-query evaluation slots

	shards      []*cacheShard
	shardMask   uint32
	maxPerShard int

	hits, misses, evals, projHits, relDefs atomic.Int64
	panics                                 atomic.Int64 // recovered in callService
}

// NewEngine wraps the service in a concurrent memoizing engine.
func NewEngine(svc CostService, o Options) *Engine {
	workers := o.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	nShards := 16
	if o.Shards > 0 {
		nShards = 1
		for nShards < o.Shards {
			nShards <<= 1
		}
	}
	e := &Engine{
		svc:          svc,
		noProjection: o.NoProjection,
		workers:      workers,
		sem:          make(chan struct{}, workers),
		shards:       make([]*cacheShard, nShards),
		shardMask:    uint32(nShards - 1),
	}
	if rs, ok := svc.(RelevanceService); ok && !o.NoProjection {
		e.rel = rs
	}
	for i := range e.shards {
		e.shards[i] = &cacheShard{m: map[string]*entry{}}
	}
	if o.MaxEntries > 0 {
		e.maxPerShard = (o.MaxEntries + nShards - 1) / nShards
		if e.maxPerShard < 1 {
			e.maxPerShard = 1
		}
	}
	return e
}

// Workers returns the engine's evaluation parallelism.
func (e *Engine) Workers() int { return e.workers }

// Stats returns a snapshot of the engine counters, merged with the
// resilience counters of the underlying service stack (when it keeps
// any) and the engine's own recovered-panic count.
func (e *Engine) Stats() Stats {
	s := Stats{
		Hits:          e.hits.Load(),
		Misses:        e.misses.Load(),
		Evaluations:   e.evals.Load(),
		ProjectedHits: e.projHits.Load(),
		RelevantDefs:  e.relDefs.Load(),
	}
	if src, ok := e.svc.(ResilienceSource); ok {
		s.Resilience = src.ResilienceCounters()
	}
	s.Resilience.PanicsRecovered += e.panics.Load()
	return s
}

// callService is the engine's single CostService call site: a panic in
// the backend (or any middleware above it) is recovered into a typed
// PanicError instead of killing the worker goroutine — and with it the
// whole process.
func (e *Engine) callService(ctx context.Context, q *querylang.Query, svcCfg []*catalog.IndexDef) (ev QueryEval, err error) {
	defer func() {
		if r := recover(); r != nil {
			e.panics.Add(1)
			err = NewPanicError("whatif: engine CostService call", r)
		}
	}()
	return e.svc.EvaluateQuery(ctx, q, svcCfg)
}

// ConfigKey is the canonical, order-insensitive cache key of a
// configuration. Every field is length- or terminator-delimited so that
// distinct definitions can never concatenate to the same key.
func ConfigKey(config []*catalog.IndexDef) string {
	parts := make([]string, len(config))
	for i, d := range config {
		parts[i] = fmt.Sprintf("%d:%s|%d:%s|%s|%s",
			len(d.Name), d.Name, len(d.Collection), d.Collection, d.Pattern.String(), d.Type.Short())
	}
	sort.Strings(parts)
	return strings.Join(parts, "\x1e")
}

// queryKey fingerprints one query so atoms from different workloads (or
// different queries of one workload) never cross-talk — and atoms for
// the same (collection, text) are shared even across workloads, since a
// QueryEval depends on nothing else. The hashed serialization is
// length-prefixed, hence injective up to hash collisions.
func queryKey(q *querylang.Query) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d:%s|%d:%s", len(q.Collection), q.Collection, len(q.Text), q.Text)
	return strconv.FormatUint(h.Sum64(), 16)
}

func (e *Engine) shard(key string) *cacheShard {
	h := fnv.New32a()
	h.Write([]byte(key))
	return e.shards[h.Sum32()&e.shardMask]
}

// EvaluateQuery costs one query under the configuration, uncached.
func (e *Engine) EvaluateQuery(ctx context.Context, q *querylang.Query, config []*catalog.IndexDef) (QueryEval, error) {
	return e.evalOne(ctx, q, filterConfig(config, q.Collection))
}

// atomPlan is the per-query half of an atom key, fixed at Bind time:
// the query fingerprint prefix and its relevance predicate.
type atomPlan struct {
	q        *querylang.Query
	prefix   string
	relevant func(*catalog.IndexDef) bool // nil: collection filter only
}

// Bound is a what-if evaluation scope over a fixed query list: the
// per-query fingerprints and relevance predicates are computed once, so
// per-configuration lookups on the hot search path only project and
// canonicalize the configuration.
type Bound struct {
	eng   *Engine
	atoms []atomPlan
}

// Bind fixes the query list the engine evaluates configurations over.
func (e *Engine) Bind(queries []*querylang.Query) *Bound {
	b := &Bound{eng: e, atoms: make([]atomPlan, len(queries))}
	for i, q := range queries {
		b.atoms[i] = atomPlan{q: q, prefix: queryKey(q) + "\x1f"}
		if e.rel != nil {
			b.atoms[i].relevant = e.rel.RelevantFilter(q)
		}
	}
	return b
}

// Queries returns the bound query list (in evaluation order).
func (b *Bound) Queries() []*querylang.Query {
	out := make([]*querylang.Query, len(b.atoms))
	for i := range b.atoms {
		out[i] = b.atoms[i].q
	}
	return out
}

// RelevantCounts returns, per bound query, the size of the
// configuration's projected sub-config: how many definitions can serve
// the query at all. No CostService calls.
func (b *Bound) RelevantCounts(config []*catalog.IndexDef) []int {
	out := make([]int, len(b.atoms))
	for i := range b.atoms {
		proj, _ := b.eng.projectAtom(&b.atoms[i], config)
		out[i] = len(proj)
	}
	return out
}

// EvaluateConfig costs every bound query under the configuration; see
// Engine.EvaluateConfig.
func (b *Bound) EvaluateConfig(ctx context.Context, config []*catalog.IndexDef) (*ConfigEval, error) {
	evs, err := b.eng.evaluateBatch(ctx, b.atoms, [][]*catalog.IndexDef{config})
	if err != nil {
		return nil, err
	}
	return evs[0], nil
}

// EvaluateConfigBatch costs every bound query under each configuration,
// as one unit: all atom keys are registered (or joined) in a single
// pass — identical projected sub-configs inside the batch are
// scheduled once, no matter how many configurations they came from —
// and the missing atoms are drained by a fixed pool of workers pulling
// from one flat task list. Results are in configs order; semantics
// match calling EvaluateConfig per configuration. Lazy-greedy
// re-evaluation bursts are the intended caller.
func (b *Bound) EvaluateConfigBatch(ctx context.Context, configs [][]*catalog.IndexDef) ([]*ConfigEval, error) {
	return b.eng.evaluateBatch(ctx, b.atoms, configs)
}

// EvaluateConfig costs every query under the configuration, memoized
// per (query, projected sub-config) atom. Concurrent calls needing the
// same atom share one evaluation; distinct atoms share the engine's
// worker pool. The returned QueryEval contents are shared with the
// cache and must not be mutated.
func (e *Engine) EvaluateConfig(ctx context.Context, queries []*querylang.Query, config []*catalog.IndexDef) (*ConfigEval, error) {
	return e.Bind(queries).EvaluateConfig(ctx, config)
}

// projectAtom returns the sub-config the atom's query is costed
// against — the collection's definitions, restricted to the relevance
// predicate when the service provides one — plus whether any
// definition of the full configuration was dropped. With NoProjection
// the service still sees the collection-filtered slice (the CostService
// contract), but the atom is keyed by the full configuration, so
// dropped is always false.
func (e *Engine) projectAtom(p *atomPlan, config []*catalog.IndexDef) ([]*catalog.IndexDef, bool) {
	if e.noProjection {
		return filterConfig(config, p.q.Collection), false
	}
	n := 0
	for _, d := range config {
		if d.Collection == p.q.Collection && (p.relevant == nil || p.relevant(d)) {
			n++
		}
	}
	if n == len(config) {
		return config, false
	}
	out := make([]*catalog.IndexDef, 0, n)
	for _, d := range config {
		if d.Collection == p.q.Collection && (p.relevant == nil || p.relevant(d)) {
			out = append(out, d)
		}
	}
	return out, true
}

// ownedAtom is one atom this batch owns the evaluation of: its
// singleflight entry plus the value under construction.
type ownedAtom struct {
	key    string
	ent    *entry
	qi     int
	ci     int
	svcCfg []*catalog.IndexDef
	val    QueryEval
	done   bool
	err    error // this atom's failure, under the batch's error mutex
}

// evaluateBatch is the engine's one evaluation path: a registration
// pass projects every (configuration, query) pair to its atom key and
// either claims it (first occurrence anywhere — in the cache, in
// flight, or earlier in this very batch) or records a join; the owned
// atoms are drained by a fixed worker pool over one flat task list,
// each worker holding one engine semaphore slot for its lifetime;
// owned entries are published (completed values cached, failed ones
// evicted so waiters retry instead of rejoining a dead entry) before
// any join is waited on, so in-batch duplicates can never deadlock.
func (e *Engine) evaluateBatch(ctx context.Context, atoms []atomPlan, configs [][]*catalog.IndexDef) ([]*ConfigEval, error) {
	out := make([]*ConfigEval, len(configs))
	for i := range out {
		out[i] = &ConfigEval{Queries: make([]QueryEval, len(atoms)), Atoms: make([]AtomInfo, len(atoms))}
	}
	type joinedAtom struct {
		key     string
		ent     *entry
		qi, ci  int
		svcCfg  []*catalog.IndexDef
		dropped bool
	}
	var own []*ownedAtom
	var joins []joinedAtom
	for ci, cfg := range configs {
		fullSuffix := "" // ConfigKey(cfg), computed at most once
		for qi := range atoms {
			p := &atoms[qi]
			svcCfg, dropped := e.projectAtom(p, cfg)
			var suffix string
			if dropped {
				suffix = ConfigKey(svcCfg)
			} else {
				if fullSuffix == "" && len(cfg) > 0 {
					fullSuffix = ConfigKey(cfg)
				}
				suffix = fullSuffix
			}
			out[ci].Atoms[qi].Relevant = len(svcCfg)
			key := p.prefix + suffix
			sh := e.shard(key)
			sh.mu.Lock()
			if ent, ok := sh.m[key]; ok {
				sh.mu.Unlock()
				// Cached or in flight (possibly owned by this very
				// batch, a duplicate projected sub-config): wait after
				// the owned work completes.
				joins = append(joins, joinedAtom{key: key, ent: ent, qi: qi, ci: ci,
					svcCfg: svcCfg, dropped: dropped})
				continue
			}
			ent := &entry{ready: make(chan struct{})}
			sh.insert(key, ent, e.maxPerShard)
			sh.mu.Unlock()
			e.misses.Add(1)
			e.relDefs.Add(int64(len(svcCfg)))
			own = append(own, &ownedAtom{key: key, ent: ent, qi: qi, ci: ci, svcCfg: svcCfg})
		}
	}

	// Drain the owned atoms through a fixed worker pool pulling an
	// atomic cursor over the flat task list.
	var firstErr error
	if len(own) > 0 {
		workers := e.workers
		if workers > len(own) {
			workers = len(own)
		}
		bctx, cancel := context.WithCancel(ctx)
		var (
			next  atomic.Int64
			wg    sync.WaitGroup
			errMu sync.Mutex
		)
		fail := func(o *ownedAtom, err error) {
			errMu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			if o != nil && o.err == nil {
				o.err = err
			}
			errMu.Unlock()
			cancel()
		}
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				select {
				case e.sem <- struct{}{}:
				case <-bctx.Done():
					fail(nil, bctx.Err())
					return
				}
				defer func() { <-e.sem }()
				for {
					i := next.Add(1) - 1
					if int(i) >= len(own) {
						return
					}
					if err := bctx.Err(); err != nil {
						fail(nil, err)
						return
					}
					o := own[i]
					e.evals.Add(1)
					ev, err := e.callService(bctx, atoms[o.qi].q, o.svcCfg)
					if err != nil {
						fail(o, err)
						return
					}
					o.val = ev
					o.done = true
				}
			}()
		}
		wg.Wait()
		cancel()
	}

	// Publish every owned entry exactly once before touching the joins:
	// completed values are cached for everyone, failed or cut-off ones
	// are evicted so waiters retry instead of rejoining a dead entry.
	for _, o := range own {
		if o.err == nil && o.done {
			o.ent.val = o.val
			close(o.ent.ready)
			out[o.ci].Queries[o.qi] = o.val
			continue
		}
		err := o.err
		if err == nil {
			err = firstErr // cancelled before this atom's task ran
		}
		if err == nil {
			err = context.Canceled
		}
		sh := e.shard(o.key)
		sh.mu.Lock()
		if sh.m[o.key] == o.ent {
			sh.remove(o.key)
		}
		sh.mu.Unlock()
		o.ent.err = err
		close(o.ent.ready)
	}
	if firstErr != nil {
		return nil, firstErr
	}

	for _, j := range joins {
		select {
		case <-j.ent.ready:
			if j.ent.err != nil {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				// Owner died on its own context; re-evaluate with ours
				// (the dead entry is already evicted).
				if errors.Is(j.ent.err, context.Canceled) || errors.Is(j.ent.err, context.DeadlineExceeded) {
					val, hit, err := e.evaluateAtom(ctx, j.key, atoms[j.qi].q, j.svcCfg, j.dropped)
					if err != nil {
						return nil, err
					}
					out[j.ci].Queries[j.qi] = val
					out[j.ci].Atoms[j.qi].Hit = hit
					continue
				}
				return nil, j.ent.err
			}
			// Count the hit only once a shared value actually arrived,
			// so error churn does not inflate the rate.
			e.hits.Add(1)
			e.relDefs.Add(int64(len(j.svcCfg)))
			if j.dropped {
				e.projHits.Add(1)
			}
			out[j.ci].Queries[j.qi] = j.ent.val
			out[j.ci].Atoms[j.qi].Hit = true
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return out, nil
}

// evaluateAtom is the single-atom singleflight path, used when a join
// finds its owner died on the owner's own context: look the key up
// again, joining any new in-flight evaluation, or claim and evaluate
// it. The bool reports whether the value came from the cache.
func (e *Engine) evaluateAtom(ctx context.Context, key string, q *querylang.Query, svcCfg []*catalog.IndexDef, dropped bool) (QueryEval, bool, error) {
	sh := e.shard(key)
	for {
		sh.mu.Lock()
		if ent, ok := sh.m[key]; ok {
			sh.mu.Unlock()
			select {
			case <-ent.ready:
				if ent.err != nil {
					if err := ctx.Err(); err != nil {
						return QueryEval{}, false, err
					}
					if errors.Is(ent.err, context.Canceled) || errors.Is(ent.err, context.DeadlineExceeded) {
						continue
					}
					return QueryEval{}, false, ent.err
				}
				e.hits.Add(1)
				e.relDefs.Add(int64(len(svcCfg)))
				if dropped {
					e.projHits.Add(1)
				}
				return ent.val, true, nil
			case <-ctx.Done():
				return QueryEval{}, false, ctx.Err()
			}
		}
		ent := &entry{ready: make(chan struct{})}
		sh.insert(key, ent, e.maxPerShard)
		sh.mu.Unlock()
		e.misses.Add(1)
		e.relDefs.Add(int64(len(svcCfg)))

		val, err := e.evalOne(ctx, q, svcCfg)
		if err != nil {
			// Failed evaluations are not cached. Evict before waking
			// waiters so their retry cannot rejoin this dead entry.
			sh.mu.Lock()
			if sh.m[key] == ent {
				sh.remove(key)
			}
			sh.mu.Unlock()
			ent.err = err
			close(ent.ready)
			return QueryEval{}, false, err
		}
		ent.val = val
		close(ent.ready)
		return val, false, nil
	}
}

// evalOne runs one CostService call under an engine semaphore slot.
func (e *Engine) evalOne(ctx context.Context, q *querylang.Query, svcCfg []*catalog.IndexDef) (QueryEval, error) {
	select {
	case e.sem <- struct{}{}:
	case <-ctx.Done():
		return QueryEval{}, ctx.Err()
	}
	defer func() { <-e.sem }()
	if err := ctx.Err(); err != nil {
		return QueryEval{}, err
	}
	e.evals.Add(1)
	return e.callService(ctx, q, svcCfg)
}

// filterConfig restricts the configuration to one collection's indexes
// (an optimizer ignores the others anyway; this keeps matching cheap).
func filterConfig(config []*catalog.IndexDef, coll string) []*catalog.IndexDef {
	n := 0
	for _, d := range config {
		if d.Collection == coll {
			n++
		}
	}
	if n == len(config) {
		return config
	}
	out := make([]*catalog.IndexDef, 0, n)
	for _, d := range config {
		if d.Collection == coll {
			out = append(out, d)
		}
	}
	return out
}

// insert adds the entry under key, evicting the oldest completed entry
// when the shard is full. In-flight entries are never evicted (the cap
// may be exceeded briefly while the oldest entries are still computing).
func (s *cacheShard) insert(key string, ent *entry, max int) {
	for max > 0 && len(s.m) >= max {
		if !s.evictOldest() {
			break // every live entry is still computing
		}
	}
	s.m[key] = ent
	s.order = append(s.order, orderEntry{key: key, ent: ent})
	// Compact consumed head space occasionally so the queue's memory
	// stays proportional to the live entry count.
	if s.head > 32 && s.head > len(s.order)/2 {
		s.order = append(s.order[:0:0], s.order[s.head:]...)
		s.head = 0
	}
}

// evictOldest drops the oldest live, completed entry and reports whether
// one was dropped. Stale head slots are consumed as they are passed;
// in-flight entries are never evicted, but entries behind an in-flight
// head are still eligible, so an overshoot caused by a slow evaluation
// at the head heals instead of persisting.
func (s *cacheShard) evictOldest() bool {
	for s.head < len(s.order) {
		oe := s.order[s.head]
		if cur, ok := s.m[oe.key]; !ok || cur != oe.ent {
			s.head++ // stale: removed, flushed, or re-inserted
			continue
		}
		break
	}
	for i := s.head; i < len(s.order); i++ {
		oe := s.order[i]
		if cur, ok := s.m[oe.key]; !ok || cur != oe.ent {
			continue
		}
		select {
		case <-oe.ent.ready:
			delete(s.m, oe.key)
			if i == s.head {
				s.head++
			}
			return true
		default:
			// Still computing; try the next oldest live entry.
		}
	}
	return false
}

// remove drops a key (failed evaluation); its queue slot goes stale and
// is skipped when the head reaches it.
func (s *cacheShard) remove(key string) {
	delete(s.m, key)
}

// Flush drops every cached atom (counters are kept). Callers must
// flush after the underlying data or statistics change: cached costs
// are keyed by query text and index definitions only, not by catalog
// version. In-flight evaluations are orphaned — already-joined waiters
// still receive their result, but it is not cached, and later requests
// re-evaluate against the new state.
func (e *Engine) Flush() {
	for _, sh := range e.shards {
		sh.mu.Lock()
		sh.m = map[string]*entry{}
		sh.order = nil
		sh.head = 0
		sh.mu.Unlock()
	}
}

// Len reports the number of cached per-(query, sub-config) atoms.
func (e *Engine) Len() int {
	n := 0
	for _, sh := range e.shards {
		sh.mu.Lock()
		n += len(sh.m)
		sh.mu.Unlock()
	}
	return n
}
