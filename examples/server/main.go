// Server mode: spawn the xiad HTTP daemon in-process and drive it the
// way an external client would — create a session over REST, run
// recommendations (one plain, one streaming over Server-Sent Events),
// and read the versioned JSON wire format. The same server binary is
// available standalone as cmd/xiad.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"

	"repro/advisor"
	"repro/advisor/server"
	"repro/internal/catalog"
	"repro/internal/datagen"
	"repro/internal/store"
)

func main() {
	// 1. Build the database and the advisor, then put the HTTP server
	// in front of it — exactly what cmd/xiad does behind flags.
	st := store.New()
	if _, err := datagen.GenerateXMark(st, datagen.XMarkConfig{Docs: 300, Seed: 9}); err != nil {
		log.Fatal(err)
	}
	adv, err := advisor.New(catalog.New(st), advisor.WithAnytime(true))
	if err != nil {
		log.Fatal(err)
	}
	ts := httptest.NewServer(server.New(adv, server.Options{}))
	defer ts.Close()
	fmt.Println("xiad serving on", ts.URL)

	// 2. Liveness and capability discovery.
	var health server.Health
	getJSON(ts.URL+"/v1/healthz", &health)
	var strategies server.StrategyList
	getJSON(ts.URL+"/v1/strategies", &strategies)
	fmt.Printf("healthz: %s; strategies: %s (default %s)\n\n",
		health.Status, strings.Join(strategies.Strategies, ", "), strategies.Default)

	// 3. Open a workload into a session. The session holds the prepared
	// candidate space and the warm what-if cache server-side, so every
	// recommend call below is incremental.
	w := datagen.XMarkWorkload(12, 9)
	var sess server.SessionInfo
	postJSON(ts.URL+"/v1/sessions", server.CreateSessionRequest{
		Name:     "xmark-demo",
		Workload: w.Format(),
	}, &sess)
	fmt.Printf("session %s: workload %q, %d basic -> %d candidates\n\n",
		sess.ID, sess.Workload, sess.Candidates.Basics, sess.Candidates.Total)

	// 4. A plain recommendation at a 256 KB budget.
	var resp advisor.RecommendResponse
	postJSON(ts.URL+"/v1/sessions/"+sess.ID+"/recommend",
		advisor.RecommendRequest{Strategy: "race", BudgetKB: 256}, &resp)
	fmt.Printf("[%s, winner %s] %d indexes, %d pages, net benefit %.1f\n",
		resp.Strategy, resp.Search.Winner, len(resp.Indexes), resp.TotalPages, resp.NetBenefit)
	for _, ddl := range resp.DDL() {
		fmt.Println("   ", ddl)
	}

	// 5. The same request as a progress stream: ?stream=1 turns the
	// response into Server-Sent Events — candidate-space stats, every
	// search trace event as it happens, counters, then the result.
	fmt.Println("\nstreaming the unconstrained recommendation:")
	req, err := http.NewRequest("POST", ts.URL+"/v1/sessions/"+sess.ID+"/recommend?stream=1",
		bytes.NewBufferString(`{"strategy":"greedy-heuristic"}`))
	if err != nil {
		log.Fatal(err)
	}
	res, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	defer res.Body.Close()
	traces := 0
	sc := bufio.NewScanner(res.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev advisor.Event
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			log.Fatal(err)
		}
		switch ev.Type {
		case advisor.EventTrace:
			traces++
			if traces <= 5 {
				fmt.Printf("  live trace: %s\n", ev.Trace.String())
			}
		case advisor.EventResult:
			fmt.Printf("  ... %d trace events total\n", traces)
			fmt.Printf("  result: %d indexes, net benefit %.1f, %d evaluations (%.0f%% cache hits)\n",
				len(ev.Response.Indexes), ev.Response.NetBenefit,
				ev.Response.Evaluations, 100*ev.Response.Cache.HitRate())
		case advisor.EventError:
			log.Fatal(ev.Error)
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
}

func getJSON(url string, v any) {
	res, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer res.Body.Close()
	decode(res, v)
}

func postJSON(url string, body, v any) {
	data, err := json.Marshal(body)
	if err != nil {
		log.Fatal(err)
	}
	res, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		log.Fatal(err)
	}
	defer res.Body.Close()
	decode(res, v)
}

func decode(res *http.Response, v any) {
	if res.StatusCode >= 300 {
		var e server.Error
		json.NewDecoder(res.Body).Decode(&e)
		log.Fatalf("%s: %s", res.Status, e.Error.Message)
	}
	if err := json.NewDecoder(res.Body).Decode(v); err != nil {
		log.Fatal(err)
	}
}
