// TPoX scenario: a financial workload mixing XQuery and SQL/XML across
// three collections, with a heavy order-entry (insert) stream. Shows how
// update cost shapes the recommendation (paper §1) and that the advisor
// handles multi-collection workloads — all through the public advisor
// facade.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/advisor"
	"repro/internal/catalog"
	"repro/internal/datagen"
	"repro/internal/store"
)

func main() {
	const securities = 80
	st := store.New()
	if err := datagen.GenerateTPoX(st, datagen.TPoXConfig{Securities: securities, Seed: 3}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("TPoX database: %d securities, %d orders, %d customer accounts\n\n",
		st.Get("security").Len(), st.Get("order").Len(), st.Get("custacc").Len())

	ctx := context.Background()
	for _, updateShare := range []float64{0, 2, 8} {
		w := datagen.TPoXWorkload(18, 3, securities)
		if updateShare > 0 {
			datagen.TPoXUpdates(w, updateShare*w.TotalQueryWeight(), 3, securities)
		}
		adv, err := advisor.New(catalog.New(st))
		if err != nil {
			log.Fatal(err)
		}
		resp, err := adv.Recommend(ctx, w, advisor.RecommendRequest{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("update:query weight ratio %.0f -> %d indexes, %d pages, query benefit %.1f, update cost %.1f, net %.1f\n",
			updateShare, len(resp.Indexes), resp.TotalPages, resp.QueryBenefit, resp.UpdateCost, resp.NetBenefit)
		for _, ddl := range resp.DDL() {
			fmt.Println("   ", ddl)
		}
		fmt.Println()
	}
}
