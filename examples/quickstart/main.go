// Quickstart: build a small XML database, open a session on a
// three-query workload through the public advisor API, stream the
// search's progress events live, and print the recommended indexes.
// This is the minimal end-to-end use of the library API; see
// examples/server for the same flow over HTTP against xiad.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/advisor"
	"repro/internal/catalog"
	"repro/internal/store"
)

func main() {
	// 1. A store with one collection of small auction documents.
	st := store.New()
	col := st.MustCreate("auction")
	for i := 0; i < 200; i++ {
		region := []string{"namerica", "africa", "samerica"}[i%3]
		doc := fmt.Sprintf(
			`<site><regions><%[1]s><item id="i%[2]d"><name>item %[2]d</name><quantity>%[3]d</quantity><price>%[4]d.50</price></item></%[1]s></regions></site>`,
			region, i, 1+i%9, 10+(i*13)%400)
		if _, err := col.InsertXML(doc); err != nil {
			log.Fatal(err)
		}
	}

	// 2. The workload: the paper's §2.2 example — quantities in two
	// regions, prices in a third.
	w := &advisor.Workload{Name: "quickstart"}
	w.MustAddQuery(3, `for $i in collection("auction")/site/regions/namerica/item where $i/quantity > 5 return $i/name`)
	w.MustAddQuery(2, `for $i in collection("auction")/site/regions/africa/item where $i/quantity > 3 return $i/name`)
	w.MustAddQuery(1, `for $i in collection("auction")/site/regions/samerica/item where $i/price < 40 return $i/name`)

	// 3. The advisor, through the public facade. The "race" strategy
	// runs every registered search strategy (greedy knapsack, the
	// paper's greedy heuristics, top-down DAG descent) concurrently on
	// the shared what-if cache and keeps the best configuration.
	adv, err := advisor.New(catalog.New(st), advisor.WithStrategy("race"))
	if err != nil {
		log.Fatal(err)
	}

	// 4. Open the workload into a session: the candidate pipeline runs
	// once, and every recommendation on the session reuses the space
	// and the warm what-if cache.
	ctx := context.Background()
	sess, err := adv.Open(ctx, w)
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()

	// 5. Stream the recommendation: candidate-space stats first, then
	// every search step as it happens (race members interleave; the
	// event names its strategy), then counters and the final result.
	var resp *advisor.RecommendResponse
	fmt.Println("progress events:")
	for ev := range sess.RecommendStream(ctx, advisor.RecommendRequest{}) {
		switch ev.Type {
		case advisor.EventSpace:
			fmt.Printf("  [%02d] space: %d basic -> %d candidates (%s)\n",
				ev.Seq, ev.Candidates.Basics, ev.Candidates.Total, ev.Pipeline.Source)
		case advisor.EventTrace:
			fmt.Printf("  [%02d] %-16s %s\n", ev.Seq, ev.Trace.Strategy, ev.Trace.String())
		case advisor.EventCounters:
			fmt.Printf("  [%02d] counters: cache %d/%d/%d, kernel %.0f%% hit\n",
				ev.Seq, ev.Cache.Hits, ev.Cache.Misses, ev.Cache.Evaluations, 100*ev.Kernel.HitRate())
		case advisor.EventResult:
			resp = ev.Response
		case advisor.EventError:
			log.Fatal(ev.Error)
		}
	}

	// 6. The recommendation: generalization should have produced
	// /site/regions/*/item/quantity (and possibly /site/regions/*/item/*).
	fmt.Println()
	fmt.Print(resp.Report())
	fmt.Println("\ncandidate pipeline:")
	fmt.Println(resp.Pipeline.String())
	fmt.Println("\n" + resp.Search.String())

	// 7. A second request on the warm session: same space, tighter
	// budget, different strategy — the budget-sweep pattern xiad serves
	// over HTTP.
	budget := resp.TotalPages / 2
	if budget < 1 {
		budget = 1 // 0 would mean "the advisor's default budget"
	}
	half, err := sess.Recommend(ctx, advisor.RecommendRequest{
		Strategy:    "topdown",
		BudgetPages: budget,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nhalf-budget topdown on the warm session: %d indexes, %d pages, net %.1f (%d evaluations, %.0f%% cache hits)\n",
		len(half.Indexes), half.TotalPages, half.NetBenefit, half.Evaluations, 100*half.Cache.HitRate())
}
