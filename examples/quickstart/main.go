// Quickstart: build a small XML database, hand the advisor a three-query
// workload, and print the recommended indexes. This is the minimal
// end-to-end use of the library's public API.
package main

import (
	"fmt"
	"log"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/store"
	"repro/internal/workload"
)

func main() {
	// 1. A store with one collection of small auction documents.
	st := store.New()
	col := st.MustCreate("auction")
	for i := 0; i < 200; i++ {
		region := []string{"namerica", "africa", "samerica"}[i%3]
		doc := fmt.Sprintf(
			`<site><regions><%[1]s><item id="i%[2]d"><name>item %[2]d</name><quantity>%[3]d</quantity><price>%[4]d.50</price></item></%[1]s></regions></site>`,
			region, i, 1+i%9, 10+(i*13)%400)
		if _, err := col.InsertXML(doc); err != nil {
			log.Fatal(err)
		}
	}

	// 2. The workload: the paper's §2.2 example — quantities in two
	// regions, prices in a third.
	w := &workload.Workload{Name: "quickstart"}
	w.MustAddQuery(3, `for $i in collection("auction")/site/regions/namerica/item where $i/quantity > 5 return $i/name`)
	w.MustAddQuery(2, `for $i in collection("auction")/site/regions/africa/item where $i/quantity > 3 return $i/name`)
	w.MustAddQuery(1, `for $i in collection("auction")/site/regions/samerica/item where $i/price < 40 return $i/name`)

	// 3. Run the advisor. The "race" strategy runs every registered
	// search strategy (greedy knapsack, the paper's greedy heuristics,
	// top-down DAG descent) concurrently on the shared what-if cache and
	// keeps the best configuration.
	opts := core.DefaultOptions()
	opts.Search = core.SearchRace
	cat := catalog.New(st)
	adv := core.New(cat, opts)
	rec, err := adv.Recommend(w)
	if err != nil {
		log.Fatal(err)
	}

	// 4. The recommendation: generalization should have produced
	// /site/regions/*/item/quantity (and possibly /site/regions/*/item/*).
	fmt.Print(rec.Report())
	fmt.Println("\ncandidate pipeline:")
	fmt.Println(rec.Gen.String())
	fmt.Println("\ncandidate DAG:")
	fmt.Print(rec.DAG.Render())

	// 5. How the search got there: per-strategy stats and the
	// structured trace (every add/skip/reclaim step, with the what-if
	// cache deltas it cost).
	fmt.Println("\n" + rec.Search.String())
	fmt.Println("search trace:")
	for _, line := range rec.Trace {
		fmt.Println("  " + line)
	}
}
