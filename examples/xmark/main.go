// XMark scenario: the full demonstration flow of the paper on the
// auction database — generate data, open one advisor session, compare
// both search algorithms plus the race portfolio under a disk budget on
// the warm what-if cache, materialize the winning configuration, and
// show actual execution times (demo steps of §3).
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"repro/advisor"
	"repro/internal/catalog"
	"repro/internal/datagen"
	"repro/internal/executor"
	"repro/internal/optimizer"
	"repro/internal/store"
)

func main() {
	st := store.New()
	if _, err := datagen.GenerateXMark(st, datagen.XMarkConfig{Docs: 800, Seed: 7}); err != nil {
		log.Fatal(err)
	}
	w := datagen.XMarkWorkload(20, 7)
	ctx := context.Background()

	cat := catalog.New(st)
	adv, err := advisor.New(cat)
	if err != nil {
		log.Fatal(err)
	}
	// One session serves the whole comparison: the candidate space is
	// built once and every strategy/budget pair below re-searches it on
	// the shared what-if cache.
	sess, err := adv.Open(ctx, w)
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()

	// Size the budget at half of the unconstrained recommendation.
	base, err := sess.Recommend(ctx, advisor.RecommendRequest{})
	if err != nil {
		log.Fatal(err)
	}
	budget := base.TotalPages / 2
	fmt.Printf("unconstrained recommendation: %d pages; using budget %d pages\n\n", base.TotalPages, budget)

	// Compare the two search algorithms of §2.3, plus the race
	// portfolio that runs every registered strategy concurrently.
	var best *advisor.RecommendResponse
	for _, strategy := range []string{"greedy-heuristic", "topdown", "race"} {
		resp, err := sess.Recommend(ctx, advisor.RecommendRequest{Strategy: strategy, BudgetPages: budget})
		if err != nil {
			log.Fatal(err)
		}
		label := strategy
		if resp.Search.Winner != "" {
			label += " -> " + resp.Search.Winner
		}
		fmt.Printf("[%s] %d indexes, %d pages, net benefit %.1f\n",
			label, len(resp.Indexes), resp.TotalPages, resp.NetBenefit)
		for _, ddl := range resp.DDL() {
			fmt.Println("   ", ddl)
		}
		if best == nil || resp.NetBenefit > best.NetBenefit {
			best = resp
		}
	}

	// Materialize the best configuration and run the workload for real.
	if _, err := adv.Materialize(best); err != nil {
		log.Fatal(err)
	}
	opt := optimizer.New(cat)
	ex := executor.New(cat)
	fmt.Printf("\n%-6s %8s %12s %12s %8s  %s\n", "query", "rows", "scan", "indexed", "speedup", "plan")
	for _, e := range w.Queries {
		scan, err := ex.Run(e.Query, nil)
		if err != nil {
			log.Fatal(err)
		}
		plan, err := opt.Optimize(e.Query, nil)
		if err != nil {
			log.Fatal(err)
		}
		idx, err := ex.Run(e.Query, plan)
		if err != nil {
			log.Fatal(err)
		}
		if scan.Rows != idx.Rows {
			log.Fatalf("%s: result mismatch", e.Query.ID)
		}
		su := float64(scan.Metrics.Duration.Microseconds()+1) / float64(idx.Metrics.Duration.Microseconds()+1)
		kind := "DOCSCAN"
		if plan.UsesIndexes() {
			kind = "IXSCAN " + strings.Join(plan.IndexNames(), ",")
		}
		fmt.Printf("%-6s %8d %12v %12v %7.1fx  %s\n",
			e.Query.ID, scan.Rows, scan.Metrics.Duration, idx.Metrics.Duration, su, kind)
	}
}
