// XMark scenario: the full demonstration flow of the paper on the
// auction database — generate data, recommend under a disk budget with
// both search algorithms, materialize the winning configuration, and
// show actual execution times (demo steps of §3).
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/executor"
	"repro/internal/optimizer"
	"repro/internal/store"
)

func main() {
	st := store.New()
	if _, err := datagen.GenerateXMark(st, datagen.XMarkConfig{Docs: 800, Seed: 7}); err != nil {
		log.Fatal(err)
	}
	w := datagen.XMarkWorkload(20, 7)

	// Size the budget at half of the unconstrained recommendation.
	base, err := core.New(catalog.New(st), core.DefaultOptions()).Recommend(w)
	if err != nil {
		log.Fatal(err)
	}
	budget := base.TotalPages / 2
	fmt.Printf("unconstrained recommendation: %d pages; using budget %d pages\n\n", base.TotalPages, budget)

	// Compare the two search algorithms of §2.3, plus the race
	// portfolio that runs every registered strategy concurrently.
	var best *core.Recommendation
	var bestCat *catalog.Catalog
	var bestAdv *core.Advisor
	for _, kind := range []core.SearchKind{core.SearchGreedyHeuristic, core.SearchTopDown, core.SearchRace} {
		opts := core.DefaultOptions()
		opts.Search = kind
		opts.DiskBudgetPages = budget
		cat := catalog.New(st)
		adv := core.New(cat, opts)
		rec, err := adv.Recommend(w)
		if err != nil {
			log.Fatal(err)
		}
		label := string(kind)
		if rec.Search.Winner != "" {
			label += " -> " + rec.Search.Winner
		}
		fmt.Printf("[%s] %d indexes, %d pages, net benefit %.1f\n",
			label, len(rec.Config), rec.TotalPages, rec.NetBenefit)
		for _, ddl := range rec.DDL {
			fmt.Println("   ", ddl)
		}
		if best == nil || rec.NetBenefit > best.NetBenefit {
			best, bestCat, bestAdv = rec, cat, adv
		}
	}

	// Materialize the better configuration and run the workload for real.
	if _, err := bestAdv.Materialize(best); err != nil {
		log.Fatal(err)
	}
	opt := optimizer.New(bestCat)
	ex := executor.New(bestCat)
	fmt.Printf("\n%-6s %8s %12s %12s %8s  %s\n", "query", "rows", "scan", "indexed", "speedup", "plan")
	for _, e := range w.Queries {
		scan, err := ex.Run(e.Query, nil)
		if err != nil {
			log.Fatal(err)
		}
		plan, err := opt.Optimize(e.Query, nil)
		if err != nil {
			log.Fatal(err)
		}
		idx, err := ex.Run(e.Query, plan)
		if err != nil {
			log.Fatal(err)
		}
		if scan.Rows != idx.Rows {
			log.Fatalf("%s: result mismatch", e.Query.ID)
		}
		su := float64(scan.Metrics.Duration.Microseconds()+1) / float64(idx.Metrics.Duration.Microseconds()+1)
		kind := "DOCSCAN"
		if plan.UsesIndexes() {
			kind = "IXSCAN " + strings.Join(plan.IndexNames(), ",")
		}
		fmt.Printf("%-6s %8d %12v %12v %7.1fx  %s\n",
			e.Query.ID, scan.Rows, scan.Metrics.Duration, idx.Metrics.Duration, su, kind)
	}
}
