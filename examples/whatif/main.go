// What-if analysis: drive the two new EXPLAIN modes directly, the way
// the first part of the demonstration does (paper §3, Figures 2 and 3):
// enumerate the basic candidates for a query, then estimate its cost
// under hand-built virtual configurations — without creating any index.
package main

import (
	"fmt"
	"log"

	"repro/internal/catalog"
	"repro/internal/datagen"
	"repro/internal/optimizer"
	"repro/internal/pattern"
	"repro/internal/querylang"
	"repro/internal/sqltype"
	"repro/internal/store"
)

func main() {
	st := store.New()
	if _, err := datagen.GenerateXMark(st, datagen.XMarkConfig{Docs: 400, Seed: 5}); err != nil {
		log.Fatal(err)
	}
	cat := catalog.New(st)
	opt := optimizer.New(cat)

	q, err := querylang.ParseAuto(
		`for $i in collection("auction")/site/regions/namerica/item where $i/price > 150 and $i/quantity > 5 return $i/name`)
	if err != nil {
		log.Fatal(err)
	}

	// EXPLAIN mode 1: Enumerate Indexes (Figure 2).
	rep, err := opt.ExplainEnumerate(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rep)

	// EXPLAIN mode 2: Evaluate Indexes (Figure 3) over three virtual
	// configurations of increasing generality.
	stats, err := cat.Stats("auction")
	if err != nil {
		log.Fatal(err)
	}
	configs := map[string][]*catalog.IndexDef{
		"exact": {
			catalog.VirtualDef("V_PRICE", "auction", pattern.MustParse("/site/regions/namerica/item/price"), sqltype.Double, stats),
		},
		"general": {
			catalog.VirtualDef("V_GPRICE", "auction", pattern.MustParse("/site/regions/*/item/price"), sqltype.Double, stats),
			catalog.VirtualDef("V_GQTY", "auction", pattern.MustParse("/site/regions/*/item/quantity"), sqltype.Double, stats),
		},
		"item-star": {
			catalog.VirtualDef("V_STAR", "auction", pattern.MustParse("/site/regions/*/item/*"), sqltype.Double, stats),
		},
	}
	for _, name := range []string{"exact", "general", "item-star"} {
		rep, err := opt.ExplainEvaluate(q, configs[name], true)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("--- configuration %q ---\n%s\n", name, rep)
	}
}
