// What-if analysis: drive the two new EXPLAIN modes the way the first
// part of the demonstration does (paper §3, Figures 2 and 3): enumerate
// the basic candidates for a query, then estimate workload cost under
// hand-built virtual configurations — without creating any index.
//
// The cost estimates go through the whatif service: configurations are
// evaluated concurrently across a worker pool and memoized, so repeated
// evaluations (the bread and butter of advisor search) are free.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/catalog"
	"repro/internal/datagen"
	"repro/internal/optimizer"
	"repro/internal/pattern"
	"repro/internal/querylang"
	"repro/internal/sqltype"
	"repro/internal/store"
	"repro/internal/whatif"
)

func main() {
	st := store.New()
	if _, err := datagen.GenerateXMark(st, datagen.XMarkConfig{Docs: 400, Seed: 5}); err != nil {
		log.Fatal(err)
	}
	cat := catalog.New(st)
	opt := optimizer.New(cat)

	queries := []*querylang.Query{
		mustParse(`for $i in collection("auction")/site/regions/namerica/item where $i/price > 150 and $i/quantity > 5 return $i/name`),
		mustParse(`for $i in collection("auction")/site/regions/europe/item where $i/quantity > 3 return $i/name`),
	}

	// EXPLAIN mode 1: Enumerate Indexes (Figure 2).
	rep, err := opt.ExplainEnumerate(queries[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rep)

	// EXPLAIN mode 2: Evaluate Indexes (Figure 3) over three virtual
	// configurations of increasing generality, via the whatif engine.
	stats, err := cat.Stats("auction")
	if err != nil {
		log.Fatal(err)
	}
	configs := map[string][]*catalog.IndexDef{
		"exact": {
			catalog.VirtualDef("V_PRICE", "auction", pattern.MustParse("/site/regions/namerica/item/price"), sqltype.Double, stats),
		},
		"general": {
			catalog.VirtualDef("V_GPRICE", "auction", pattern.MustParse("/site/regions/*/item/price"), sqltype.Double, stats),
			catalog.VirtualDef("V_GQTY", "auction", pattern.MustParse("/site/regions/*/item/quantity"), sqltype.Double, stats),
		},
		"item-star": {
			catalog.VirtualDef("V_STAR", "auction", pattern.MustParse("/site/regions/*/item/*"), sqltype.Double, stats),
		},
	}

	eng := whatif.NewEngine(whatif.NewOptimizerService(opt), whatif.Options{})
	ctx := context.Background()
	for round := 1; round <= 2; round++ {
		fmt.Printf("=== round %d ===\n", round)
		for _, name := range []string{"exact", "general", "item-star"} {
			res, err := eng.EvaluateConfig(ctx, queries, configs[name])
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("--- configuration %q ---\n", name)
			for qi := range queries {
				qe := res.Queries[qi]
				fmt.Printf("Q%d: cost %.2f -> %.2f (benefit %.2f) using %v\n",
					qi+1, qe.CostNoIndexes, qe.Cost, qe.Benefit(), qe.UsedIndexes)
			}
		}
	}
	// Round 2 was answered entirely from the cache.
	s := eng.Stats()
	fmt.Printf("\nwhat-if engine: %d workers, %d evaluations, %d misses, %d hits\n",
		eng.Workers(), s.Evaluations, s.Misses, s.Hits)
}

func mustParse(text string) *querylang.Query {
	q, err := querylang.ParseAuto(text)
	if err != nil {
		log.Fatal(err)
	}
	return q
}
